module Graph = Aig.Graph

type t = {
  target : int;
  divisors : int array;
  cover : Logic.Cover.t;
  expr : Logic.Factor.expr;
  gain : int;
}

(* AND nodes of the target's MFFC that actually die when the target is
   replaced by a function of [divisors]: a divisor inside the MFFC keeps
   itself and its in-MFFC transitive fanin alive.  [in_mffc] is the node's
   membership table, built once per target and shared across its (many)
   divisor sets. *)
let true_savings g ~in_mffc ~mffc_size divisors =
  (* Fast path: divisors outside the MFFC keep nothing alive. *)
  if Array.for_all (fun d -> not (Hashtbl.mem in_mffc d)) divisors then mffc_size
  else begin
    let kept = Hashtbl.create 8 in
    let rec keep id =
      if Hashtbl.mem in_mffc id && not (Hashtbl.mem kept id) then begin
        Hashtbl.replace kept id ();
        keep (Graph.node_of (Graph.fanin0 g id));
        keep (Graph.node_of (Graph.fanin1 g id))
      end
    in
    Array.iter keep divisors;
    mffc_size - Hashtbl.length kept
  end

(* Derivation (Espresso + factoring) is the expensive step, so first collect
   every feasible divisor set with its cheap savings bound, then derive
   functions only for the most promising few. *)
let derivations_per_node = 8

let generate ?obs g ~(config : Config.t) ~sigs ~rounds =
  let fanouts = Aig.Topo.fanout_counts g in
  let acc = ref [] in
  Graph.iter_ands g (fun v ->
      if fanouts.(v) > 0 then begin
        let mffc = Aig.Cone.mffc g ~fanouts v in
        let mffc_size = List.length mffc in
        let in_mffc = Hashtbl.create 16 in
        List.iter (fun n -> Hashtbl.replace in_mffc n ()) mffc;
        let feasible = ref [] in
        let mask = Option.map (fun o -> o.(v)) obs in
        Divisor.iter_sets g ~max_tfi:config.max_tfi_divisors v (fun divisors ->
            let care = Care.scan ?mask ~sigs ~node:v ~divisors ~rounds () in
            if Feasibility.ok care then
              feasible :=
                (true_savings g ~in_mffc ~mffc_size divisors, divisors, care)
                :: !feasible;
            `Continue);
        let ranked =
          List.stable_sort (fun (s1, _, _) (s2, _, _) -> compare s2 s1) (List.rev !feasible)
        in
        let found = ref 0 and derived = ref 0 in
        let candidates = ref [] in
        List.iter
          (fun (savings, divisors, care) ->
            if !derived < derivations_per_node && !found < config.lac_limit
               && savings >= 1
            then begin
              incr derived;
              let cover = Resub.derive care in
              let expr = Resub.expr_of_cover cover in
              let gain = savings - Logic.Factor.and2_cost expr in
              if gain >= 0 then begin
                incr found;
                candidates := { target = v; divisors; cover; expr; gain } :: !candidates
              end
            end)
          ranked;
        acc := List.rev_append !candidates !acc
      end);
  List.rev !acc

let replacement lac = Graph.Replace_expr (lac.expr, lac.divisors)

let pp ppf lac =
  Format.fprintf ppf "node %d <- %a over [%a] (gain %d)" lac.target Logic.Factor.pp
    lac.expr
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    (Array.to_list lac.divisors)
    lac.gain
