(** Divisor-set selection (Algorithm 1).

    For a target node [V] with fanin set [FI], the candidate divisor sets
    are, in order: each [FI \ {n}] (drop one fanin), then each
    [(FI \ {n}) + {u}] for every node [u] of [V]'s TFI cone taken in
    ascending logic-level order (replace a fanin by a possibly remote
    signal).  Duplicate sets are suppressed.  The enumeration is lazy via a
    callback so that Algorithm 2's per-node LAC limit can stop it early. *)

val iter_sets :
  Aig.Graph.t ->
  max_tfi:int ->
  int ->
  (int array -> [ `Stop | `Continue ]) ->
  unit
(** [iter_sets g ~max_tfi v f] calls [f] on each divisor set (array of node
    ids, sorted) until [f] answers [`Stop] or the sets are exhausted.  At
    most [max_tfi] TFI nodes are considered for the replacement step. *)

val select : Aig.Graph.t -> max_tfi:int -> int -> int array list
(** Eager version (mainly for tests): all sets in enumeration order. *)
