(** Divisor feasibility (Theorem 1 restricted to simulated patterns,
    Section III-B2).

    A divisor set can form an approximate resubstitution function when no two
    simulated rounds produce the same divisor tuple with different target
    values — i.e. the care scan contains no {!Care.Conflict} entry. *)

val ok : Care.t -> bool

val check :
  sigs:Logic.Bitvec.t array ->
  node:int ->
  divisors:int array ->
  rounds:int ->
  bool
(** Convenience: scan then test. *)
