(** Derivation of approximate resubstitution functions (Section III-B3).

    From a feasible care scan, the truth table over the divisors has the
    observed target value on each care tuple and a don't-care elsewhere; an
    ISOP is computed on that interval (Espresso-minimized) and factored into
    an expression over the divisors, ready for insertion by
    {!Aig.Graph.rebuild}. *)

val tables : Care.t -> Logic.Truth.t * Logic.Truth.t
(** [(on, dc)] truth tables over the divisor variables.  Raises
    [Invalid_argument] if the scan has a conflict. *)

val derive : Care.t -> Logic.Cover.t
(** Minimized ISOP cover of the resubstitution function. *)

val expr_of_cover : Logic.Cover.t -> Logic.Factor.expr
(** Factored form for AIG insertion. *)
