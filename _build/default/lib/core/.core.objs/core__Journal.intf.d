lib/core/journal.mli: Aig Config
