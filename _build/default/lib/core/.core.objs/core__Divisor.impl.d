lib/core/divisor.ml: Aig Array Hashtbl List
