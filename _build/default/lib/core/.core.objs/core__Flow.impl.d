lib/core/flow.ml: Aig Array Config Errest Lac List Logic Logs Sim Sys
