lib/core/flow.ml: Aig Array Config Errest Fault Float Hashtbl Journal Lac List Logic Logs Option Printexc Printf Sim Sys
