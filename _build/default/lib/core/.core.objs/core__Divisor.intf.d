lib/core/divisor.mli: Aig
