lib/core/fault.mli:
