lib/core/fault.ml: Bytes Char List
