lib/core/feasibility.ml: Array Care
