lib/core/care.ml: Array Logic Option
