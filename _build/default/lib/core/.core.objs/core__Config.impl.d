lib/core/config.ml: Errest Format
