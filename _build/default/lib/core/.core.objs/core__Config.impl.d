lib/core/config.ml: Errest Fault Format
