lib/core/config.mli: Errest Fault Format
