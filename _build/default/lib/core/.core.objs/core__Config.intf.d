lib/core/config.mli: Errest Format
