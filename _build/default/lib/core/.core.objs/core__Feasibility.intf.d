lib/core/feasibility.mli: Care Logic
