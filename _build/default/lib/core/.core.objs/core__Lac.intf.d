lib/core/lac.mli: Aig Config Format Logic
