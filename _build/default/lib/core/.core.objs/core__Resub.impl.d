lib/core/resub.ml: Array Care Logic
