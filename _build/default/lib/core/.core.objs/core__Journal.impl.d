lib/core/journal.ml: Aig Array Buffer Char Circuit_io Config Errest Filename Int64 List Printf String Sys
