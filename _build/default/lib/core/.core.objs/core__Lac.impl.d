lib/core/lac.ml: Aig Array Care Config Divisor Feasibility Format Hashtbl List Logic Option Resub
