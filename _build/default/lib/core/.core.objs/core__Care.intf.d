lib/core/care.mli: Logic
