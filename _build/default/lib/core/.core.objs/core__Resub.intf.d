lib/core/resub.mli: Care Logic
