lib/core/flow.mli: Aig Config
