lib/core/flow.mli: Aig Config Fault Journal
