exception Injected of string

exception Killed

type kind =
  | Flip_signatures of { iteration : int; bit : int }
  | Corrupt_lac of { iteration : int }
  | Raise_at of { iteration : int }
  | Kill_after of { applied : int }

type plan = kind list

let none = []

let flip_signatures plan ~iteration =
  List.find_map
    (function
      | Flip_signatures f when f.iteration = iteration -> Some f.bit
      | _ -> None)
    plan

let corrupt_lac plan ~iteration =
  List.exists (function Corrupt_lac f -> f.iteration = iteration | _ -> false) plan

let should_raise plan ~iteration =
  List.exists (function Raise_at f -> f.iteration = iteration | _ -> false) plan

let should_kill plan ~applied =
  List.exists (function Kill_after f -> applied >= f.applied | _ -> false) plan

(* ---------- File corruption (for journal-recovery tests) ---------- *)

let truncate_file path ~keep =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let keep = max 0 (min keep len) in
  let contents = really_input_string ic keep in
  close_in ic;
  (* Deliberately NOT atomic: the whole point is to fabricate the torn file
     an atomic writer never produces. *)
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let corrupt_byte path ~pos =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = Bytes.of_string (really_input_string ic len) in
  close_in ic;
  if len = 0 then failwith "Fault.corrupt_byte: empty file";
  let pos = pos mod len in
  Bytes.set contents pos (Char.chr (Char.code (Bytes.get contents pos) lxor 0x2a));
  let oc = open_out_bin path in
  output_bytes oc contents;
  close_out oc
