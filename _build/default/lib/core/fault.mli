(** Deterministic fault injection for resilience testing.

    A {!plan} (carried in {!Config.t}) names exact flow iterations at which
    the runtime deliberately misbehaves, so tests can prove that each
    recovery path — guard rollback, LAC quarantine, exception containment,
    journal fallback — actually fires.  With the default empty plan every
    hook below is a no-op and costs one list scan per iteration. *)

exception Injected of string
(** Raised by the flow at a [Raise_at] site; also usable by tests. *)

exception Killed
(** Raised at a [Kill_after] site.  The flow deliberately does NOT recover
    from this one: it simulates an abrupt process death for kill-and-resume
    tests, escaping past all guards (the journal on disk stays valid). *)

type kind =
  | Flip_signatures of { iteration : int; bit : int }
      (** Flip bit [bit] of every node's evaluation signature at the given
          iteration — a soft-error model that silently skews the error
          predictions of all LAC candidates scored that iteration. *)
  | Corrupt_lac of { iteration : int }
      (** Replace the chosen LAC's resubstitution function with a constant
          before it is applied, modeling a buggy ISOP/factoring step: the
          prediction was made for the true function, the graph gets the
          wrong one. *)
  | Raise_at of { iteration : int }
      (** Raise {!Injected} mid-iteration. *)
  | Kill_after of { applied : int }
      (** Raise {!Killed} at the top of the first iteration with at least
          [applied] accepted LACs. *)

type plan = kind list

val none : plan

val flip_signatures : plan -> iteration:int -> int option
(** The bit to flip this iteration, if any. *)

val corrupt_lac : plan -> iteration:int -> bool

val should_raise : plan -> iteration:int -> bool

val should_kill : plan -> applied:int -> bool

(** {1 File corruption helpers}

    For journal-recovery tests: fabricate the torn or bit-rotted files that
    the atomic writer itself can never produce. *)

val truncate_file : string -> keep:int -> unit
(** Truncate a file in place to its first [keep] bytes (clamped). *)

val corrupt_byte : string -> pos:int -> unit
(** XOR one byte of the file at offset [pos mod size].  Fails on an empty
    file. *)
