module Graph = Aig.Graph

let fanin_nodes g v =
  let n0 = Graph.node_of (Graph.fanin0 g v) in
  let n1 = Graph.node_of (Graph.fanin1 g v) in
  if n0 = n1 then [ n0 ] else [ n0; n1 ]

let normalize set =
  let arr = Array.of_list set in
  Array.sort compare arr;
  arr

let iter_sets g ~max_tfi v f =
  if not (Graph.is_and g v) then ()
  else begin
    let fis = fanin_nodes g v in
    let tfi = Aig.Cone.tfi_nodes g v in
    let tfi =
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      take max_tfi tfi
    in
    let seen = Hashtbl.create 64 in
    let exception Stop in
    let emit set =
      let arr = normalize set in
      if not (Hashtbl.mem seen arr) then begin
        Hashtbl.replace seen arr ();
        match f arr with `Stop -> raise Stop | `Continue -> ()
      end
    in
    try
      List.iter
        (fun n ->
          let a = List.filter (fun x -> x <> n) fis in
          emit a;
          List.iter (fun u -> if u <> v && not (List.mem u a) then emit (u :: a)) tfi)
        fis
    with Stop -> ()
  end

let select g ~max_tfi v =
  let acc = ref [] in
  iter_sets g ~max_tfi v (fun set ->
      acc := set :: !acc;
      `Continue);
  List.rev !acc
