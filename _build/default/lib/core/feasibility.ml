let ok (care : Care.t) =
  Array.for_all (function Care.Conflict -> false | Care.Unseen | Care.Value _ -> true)
    care.Care.table

let check ~sigs ~node ~divisors ~rounds =
  ok (Care.scan ~sigs ~node ~divisors ~rounds ())
