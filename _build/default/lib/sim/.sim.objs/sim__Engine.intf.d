lib/sim/engine.mli: Aig Logic
