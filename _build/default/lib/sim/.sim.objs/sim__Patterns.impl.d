lib/sim/patterns.ml: Array Logic
