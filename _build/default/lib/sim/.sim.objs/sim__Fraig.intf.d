lib/sim/fraig.mli: Aig
