lib/sim/fraig.ml: Aig Array Engine Hashtbl List Logic Patterns
