lib/sim/patterns.mli: Logic
