lib/sim/engine.ml: Aig Array Logic
