(** Primary-input pattern generation.

    A pattern set for a circuit with [p] PIs and [len] rounds is an array of
    [p] signatures of [len] bits: bit [m] of signature [i] is the value of
    PI [i] in simulation round [m]. *)

val random : Logic.Rng.t -> npis:int -> len:int -> Logic.Bitvec.t array
(** Uniformly distributed rounds. *)

val exhaustive : npis:int -> Logic.Bitvec.t array
(** All [2^npis] input combinations, round [m] = minterm [m].  Requires
    [npis <= 24]. *)

val exhaustive_limit : int
(** Largest PI count accepted by {!exhaustive} (24). *)

val weighted : Logic.Rng.t -> probs:float array -> len:int -> Logic.Bitvec.t array
(** Independent per-PI one-probabilities — the "user-specified distribution"
    hook of Section III-A. *)
