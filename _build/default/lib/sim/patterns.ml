let random rng ~npis ~len =
  Array.init npis (fun _ -> Logic.Bitvec.random rng len)

let exhaustive_limit = 24

let exhaustive ~npis =
  if npis > exhaustive_limit then invalid_arg "Patterns.exhaustive: too many PIs";
  let len = 1 lsl npis in
  Array.init npis (fun i -> Logic.Bitvec.init len (fun m -> (m lsr i) land 1 = 1))

let weighted rng ~probs ~len =
  Array.map
    (fun p ->
      if p < 0.0 || p > 1.0 then invalid_arg "Patterns.weighted: probability out of range";
      Logic.Bitvec.init len (fun _ -> Logic.Rng.float rng < p))
    probs
