module Graph = Aig.Graph
module Truth = Logic.Truth

(* A pattern: a library gate pre-composed with a pin permutation and pin
   polarities.  [pin_var.(i)] is the cut variable pin [i] reads and
   [pin_neg.(i)] whether it reads it complemented. *)
type pattern = {
  gate : Library.gate;
  pin_var : int array;
  pin_neg : bool array;
}

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs

(* tt of the pattern as a function of the cut variables. *)
let pattern_truth p nvars =
  Truth.of_fun nvars (fun m ->
      let gm = ref 0 in
      for i = 0 to p.gate.Library.ninputs - 1 do
        let bit = (m lsr p.pin_var.(i)) land 1 in
        let bit = if p.pin_neg.(i) then 1 - bit else bit in
        gm := !gm lor (bit lsl i)
      done;
      Truth.get p.gate.Library.tt !gm)

(* Pattern table: function (over exactly its support size) -> cheapest
   pattern computing it. *)
let build_patterns (lib : Library.t) =
  let table : (Truth.t, pattern) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun gate ->
      let n = gate.Library.ninputs in
      let vars = List.init n (fun i -> i) in
      List.iter
        (fun perm ->
          let pin_var = Array.of_list perm in
          for phase_mask = 0 to (1 lsl n) - 1 do
            let pin_neg = Array.init n (fun i -> (phase_mask lsr i) land 1 = 1) in
            let p = { gate; pin_var; pin_neg } in
            let tt = pattern_truth p n in
            (* Only functions with full support: shrunk cut functions have
               full support by construction. *)
            if List.length (Truth.support tt) = n || n = 1 then
              match Hashtbl.find_opt table tt with
              | Some old when old.gate.Library.area <= gate.Library.area -> ()
              | _ -> Hashtbl.replace table tt p
          done)
        (permutations vars))
    lib.Library.gates;
  table

type choice =
  | Match of {
      pattern : pattern;
      leaves : int array;  (** node ids, one per cut variable *)
    }
  | From_inv  (** realize this phase by inverting the other phase *)
  | Unmapped

let run ?(k = 4) ?(max_cuts = 10) ?(lib = Library.mcnc) g =
  let inv = Library.inverter lib in
  let patterns = build_patterns lib in
  let n = Graph.num_nodes g in
  let cuts = Aig.Cut.enumerate g ~k ~max_cuts () in
  let fanouts = Aig.Topo.fanout_counts g in
  (* Index 0 = positive phase, 1 = negative. *)
  let arrival = Array.make_matrix n 2 infinity in
  let flow = Array.make_matrix n 2 infinity in
  let choice = Array.make_matrix n 2 Unmapped in
  for i = 0 to Graph.num_pis g - 1 do
    let id = Graph.pi_node g i in
    arrival.(id).(0) <- 0.0;
    flow.(id).(0) <- 0.0;
    arrival.(id).(1) <- inv.Library.delay;
    flow.(id).(1) <- inv.Library.area;
    choice.(id).(1) <- From_inv
  done;
  let consider id phase cand_arrival cand_flow cand_choice =
    if
      cand_arrival < arrival.(id).(phase)
      || (cand_arrival = arrival.(id).(phase) && cand_flow < flow.(id).(phase))
    then begin
      arrival.(id).(phase) <- cand_arrival;
      flow.(id).(phase) <- cand_flow;
      choice.(id).(phase) <- cand_choice
    end
  in
  Graph.iter_ands g (fun id ->
      let fo = float_of_int (max 1 fanouts.(id)) in
      List.iter
        (fun cut ->
          let leaves = cut.Aig.Cut.leaves in
          if not (Array.exists (fun l -> l = id) leaves) then begin
            let tt_full = Aig.Cut.truth g ~root:id ~leaves in
            let tt, support = Truth.shrink_to_support tt_full in
            let sleaves = Array.of_list (List.map (fun v -> leaves.(v)) support) in
            let try_phase phase tt =
              match Hashtbl.find_opt patterns tt with
              | None -> ()
              | Some p ->
                  let arr = ref 0.0 and fl = ref p.gate.Library.area in
                  Array.iteri
                    (fun pin v ->
                      let leaf = sleaves.(v) in
                      let ph = if p.pin_neg.(pin) then 1 else 0 in
                      arr := Float.max !arr arrival.(leaf).(ph);
                      fl := !fl +. flow.(leaf).(ph))
                    p.pin_var;
                  consider id phase
                    (p.gate.Library.delay +. !arr)
                    (!fl /. fo)
                    (Match { pattern = p; leaves = sleaves })
            in
            (match Array.length sleaves with
            | 0 -> () (* constant cut function: cannot happen after folding *)
            | _ ->
                try_phase 0 tt;
                try_phase 1 (Truth.bnot tt))
          end)
        cuts.(id);
      (* Inverter bridging between the phases. *)
      for phase = 0 to 1 do
        let other = 1 - phase in
        consider id phase
          (arrival.(id).(other) +. inv.Library.delay)
          (flow.(id).(other) +. inv.Library.area)
          From_inv
      done);
  (* Derivation. *)
  let npis = Graph.num_pis g in
  let cells = ref [] in
  let ncells = ref 0 in
  let add_cell cell =
    cells := cell :: !cells;
    let net = npis + !ncells in
    incr ncells;
    net
  in
  let memo = Hashtbl.create 256 in
  let rec emit id phase =
    match Hashtbl.find_opt memo (id, phase) with
    | Some net -> net
    | None ->
        let net =
          if Graph.is_pi g id && phase = 0 then Graph.pi_index g id
          else begin
            match choice.(id).(phase) with
            | From_inv ->
                let src = emit id (1 - phase) in
                add_cell
                  {
                    Mapped.label = inv.Library.name;
                    area = inv.Library.area;
                    delay = inv.Library.delay;
                    fanins = [| Mapped.Net src |];
                    tt = inv.Library.tt;
                  }
            | Match { pattern; leaves } ->
                let fanins =
                  Array.init pattern.gate.Library.ninputs (fun pin ->
                      let leaf = leaves.(pattern.pin_var.(pin)) in
                      let ph = if pattern.pin_neg.(pin) then 1 else 0 in
                      Mapped.Net (emit leaf ph))
                in
                add_cell
                  {
                    Mapped.label = pattern.gate.Library.name;
                    area = pattern.gate.Library.area;
                    delay = pattern.gate.Library.delay;
                    fanins;
                    tt = pattern.gate.Library.tt;
                  }
            | Unmapped -> failwith "Cellmap: node has no match (incomplete library)"
          end
        in
        Hashtbl.replace memo (id, phase) net;
        net
  in
  let pos =
    Array.init (Graph.num_pos g) (fun i ->
        let l = Graph.po_lit g i in
        let id = Graph.node_of l in
        if Graph.is_const id then Mapped.Const (Graph.is_compl l)
        else Mapped.Net (emit id (if Graph.is_compl l then 1 else 0)))
  in
  {
    Mapped.name = Graph.name g;
    npis;
    pi_names = Array.init npis (Graph.pi_name g);
    cells = Array.of_list (List.rev !cells);
    pos;
    po_names = Array.init (Graph.num_pos g) (Graph.po_name g);
  }
