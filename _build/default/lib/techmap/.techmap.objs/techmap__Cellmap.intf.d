lib/techmap/cellmap.mli: Aig Library Mapped
