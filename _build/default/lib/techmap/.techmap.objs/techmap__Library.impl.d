lib/techmap/library.ml: Format List Logic Printf
