lib/techmap/mapped.mli: Format Logic
