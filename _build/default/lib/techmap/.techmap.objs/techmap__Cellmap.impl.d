lib/techmap/cellmap.ml: Aig Array Float Hashtbl Library List Logic Mapped
