lib/techmap/library.mli: Format Logic
