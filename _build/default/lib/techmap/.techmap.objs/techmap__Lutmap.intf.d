lib/techmap/lutmap.mli: Aig Mapped
