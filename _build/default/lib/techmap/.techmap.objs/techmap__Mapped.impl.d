lib/techmap/mapped.ml: Array Float Format Logic Printf
