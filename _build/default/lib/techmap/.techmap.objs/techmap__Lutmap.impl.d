lib/techmap/lutmap.ml: Aig Array Float Hashtbl List Logic Mapped Printf
