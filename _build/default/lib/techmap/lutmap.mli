(** K-LUT technology mapping (the "if -K 6" substitute for the FPGA
    experiments).

    Cut-based structural mapping: every AND node selects the k-feasible cut
    minimizing mapped depth, ties broken by area flow; the LUT network is
    derived from the PO drivers.  Edge inversions are absorbed into LUT
    functions, matching FPGA cost semantics. *)

val run : ?k:int -> ?max_cuts:int -> Aig.Graph.t -> Mapped.t
(** Defaults: [k = 6], [max_cuts = 12].  The result's [label]s are
    ["lut<size>"], each cell delay 1.0 (so {!Mapped.depth} is LUT depth and
    {!Mapped.num_cells} the LUT count). *)
