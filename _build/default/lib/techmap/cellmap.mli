(** Standard-cell technology mapping (the "map" substitute for the ASIC
    experiments).

    Phase-aware cut-based Boolean matching: for every AND node and both
    output phases, each k-feasible cut's function (shrunk to its support) is
    looked up in a precomputed pattern table of library-gate functions under
    all pin permutations and pin polarities; pin polarities become phase
    requirements on the fanin side, bridged by explicit inverters when
    cheaper.  Selection is delay-oriented with area-flow tie-breaking,
    mirroring the paper's ["map -D <original delay>"] usage. *)

val run : ?k:int -> ?max_cuts:int -> ?lib:Library.t -> Aig.Graph.t -> Mapped.t
(** Defaults: [k = 4], [max_cuts = 10], [lib = Library.mcnc].  The mapped
    netlist contains only library cells (inverters included) and is
    functionally equivalent to the AIG (verified in the test-suite). *)
