type gate = {
  name : string;
  ninputs : int;
  tt : Logic.Truth.t;
  area : float;
  delay : float;
}

type t = { name : string; gates : gate list }

let inverter t =
  let is_inv g =
    g.ninputs = 1 && Logic.Truth.equal g.tt (Logic.Truth.bnot (Logic.Truth.var 1 0))
  in
  match List.filter is_inv t.gates with
  | [] -> failwith (Printf.sprintf "Library %s has no inverter" t.name)
  | invs ->
      List.fold_left (fun best g -> if g.area < best.area then g else best)
        (List.hd invs) (List.tl invs)

let max_inputs t = List.fold_left (fun acc g -> max acc g.ninputs) 0 t.gates

let find t name = List.find_opt (fun (g : gate) -> g.name = name) t.gates

(* Gate functions written over variables a=0, b=1, c=2, d=3. *)
let v n i = Logic.Truth.var n i

let gate name ninputs tt area delay = { name; ninputs; tt; area; delay }

let mcnc =
  let open Logic.Truth in
  let and2 = band (v 2 0) (v 2 1) in
  let or2 = bor (v 2 0) (v 2 1) in
  let and3 = band (band (v 3 0) (v 3 1)) (v 3 2) in
  let or3 = bor (bor (v 3 0) (v 3 1)) (v 3 2) in
  let and4 = band (band (v 4 0) (v 4 1)) (band (v 4 2) (v 4 3)) in
  let or4 = bor (bor (v 4 0) (v 4 1)) (bor (v 4 2) (v 4 3)) in
  let xor2 = bxor (v 2 0) (v 2 1) in
  let aoi21 = bnot (bor (band (v 3 0) (v 3 1)) (v 3 2)) in
  let oai21 = bnot (band (bor (v 3 0) (v 3 1)) (v 3 2)) in
  let aoi22 = bnot (bor (band (v 4 0) (v 4 1)) (band (v 4 2) (v 4 3))) in
  let oai22 = bnot (band (bor (v 4 0) (v 4 1)) (bor (v 4 2) (v 4 3))) in
  let mux2 =
    (* out = s ? a : b  with s=var2, a=var0, b=var1. *)
    bor (band (v 3 2) (v 3 0)) (band (bnot (v 3 2)) (v 3 1))
  in
  {
    name = "mcnc";
    gates =
      [
        gate "inv" 1 (bnot (v 1 0)) 1.0 0.9;
        gate "nand2" 2 (bnot and2) 2.0 1.0;
        gate "nand3" 3 (bnot and3) 3.0 1.1;
        gate "nand4" 4 (bnot and4) 4.0 1.2;
        gate "nor2" 2 (bnot or2) 2.0 1.4;
        gate "nor3" 3 (bnot or3) 3.0 2.4;
        gate "nor4" 4 (bnot or4) 4.0 3.8;
        gate "and2" 2 and2 3.0 1.9;
        gate "or2" 2 or2 3.0 2.4;
        gate "xor2" 2 xor2 5.0 1.9;
        gate "xnor2" 2 (bnot xor2) 5.0 2.1;
        gate "aoi21" 3 aoi21 3.0 1.6;
        gate "aoi22" 4 aoi22 4.0 2.0;
        gate "oai21" 3 oai21 3.0 1.6;
        gate "oai22" 4 oai22 4.0 2.0;
        gate "mux2" 3 mux2 5.0 1.8;
      ];
  }

let pp_gate ppf (g : gate) =
  Format.fprintf ppf "%s/%d area=%.1f delay=%.1f tt=%a" g.name g.ninputs g.area g.delay
    Logic.Truth.pp g.tt
