(** Standard-cell libraries for technology mapping.

    A gate is a single-output cell described by a truth table over its
    inputs, an area, and a pin-independent propagation delay — the genlib
    level of detail, which is what the paper's MCNC-library experiments
    need. *)

type gate = {
  name : string;
  ninputs : int;
  tt : Logic.Truth.t;  (** function over variables [0 .. ninputs-1] *)
  area : float;
  delay : float;
}

type t = { name : string; gates : gate list }

val inverter : t -> gate
(** The smallest gate computing NOT.  Raises [Failure] if the library has
    none (every usable library must). *)

val max_inputs : t -> int

val find : t -> string -> gate option

val mcnc : t
(** Embedded MCNC-class library (see DESIGN.md §2.5): INV, buffers excluded,
    NAND/NOR 2-4, AND2/OR2, XOR2/XNOR2, AOI/OAI 21 and 22, MUX2. *)

val pp_gate : Format.formatter -> gate -> unit
