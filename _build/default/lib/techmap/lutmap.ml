module Graph = Aig.Graph
module Truth = Logic.Truth

let run ?(k = 6) ?(max_cuts = 12) g =
  let n = Graph.num_nodes g in
  let cuts = Aig.Cut.enumerate g ~k ~max_cuts () in
  let fanouts = Aig.Topo.fanout_counts g in
  let arrival = Array.make n 0.0 in
  let flow = Array.make n 0.0 in
  let best_cut : Aig.Cut.t option array = Array.make n None in
  Graph.iter_ands g (fun id ->
      let candidates =
        List.filter
          (fun c -> not (Array.exists (fun l -> l = id) c.Aig.Cut.leaves))
          cuts.(id)
      in
      let score c =
        let arr =
          Array.fold_left (fun acc l -> Float.max acc arrival.(l)) 0.0 c.Aig.Cut.leaves
        in
        let fl =
          Array.fold_left (fun acc l -> acc +. flow.(l)) 1.0 c.Aig.Cut.leaves
          /. float_of_int (max 1 fanouts.(id))
        in
        (1.0 +. arr, fl)
      in
      let best =
        List.fold_left
          (fun acc c ->
            let s = score c in
            match acc with
            | None -> Some (s, c)
            | Some (s0, _) -> if s < s0 then Some (s, c) else acc)
          None candidates
      in
      match best with
      | None -> failwith "Lutmap: AND node without a non-trivial cut"
      | Some ((arr, fl), c) ->
          arrival.(id) <- arr;
          flow.(id) <- fl;
          best_cut.(id) <- Some c);
  (* Derive the cover: walk chosen cuts from the PO drivers. *)
  let net_of = Array.make n (-1) in
  for i = 0 to Graph.num_pis g - 1 do
    net_of.(Graph.pi_node g i) <- i
  done;
  let cells = ref [] in
  let ncells = ref 0 in
  let npis = Graph.num_pis g in
  let add_cell cell =
    cells := cell :: !cells;
    let net = npis + !ncells in
    incr ncells;
    net
  in
  let rec emit id =
    if net_of.(id) >= 0 then net_of.(id)
    else begin
      let cut = match best_cut.(id) with Some c -> c | None -> assert false in
      let leaves = cut.Aig.Cut.leaves in
      let fanin_nets = Array.map (fun l -> Mapped.Net (emit l)) leaves in
      let tt = Aig.Cut.truth g ~root:id ~leaves in
      let net =
        add_cell
          {
            Mapped.label = Printf.sprintf "lut%d" (Array.length leaves);
            area = 1.0;
            delay = 1.0;
            fanins = fanin_nets;
            tt;
          }
      in
      net_of.(id) <- net;
      net
    end
  in
  (* Complemented PO drivers get an inverted clone (free in a real LUT, but
     cloning keeps the netlist purely positive); memoized per node. *)
  let inverted = Hashtbl.create 8 in
  let emit_inverted id =
    match Hashtbl.find_opt inverted id with
    | Some net -> net
    | None ->
        let net =
          if Graph.is_pi g id then
            add_cell
              {
                Mapped.label = "lut1";
                area = 1.0;
                delay = 1.0;
                fanins = [| Mapped.Net net_of.(id) |];
                tt = Truth.bnot (Truth.var 1 0);
              }
          else begin
            ignore (emit id);
            let cut = match best_cut.(id) with Some c -> c | None -> assert false in
            let leaves = cut.Aig.Cut.leaves in
            add_cell
              {
                Mapped.label = Printf.sprintf "lut%d" (Array.length leaves);
                area = 1.0;
                delay = 1.0;
                fanins = Array.map (fun l -> Mapped.Net net_of.(l)) leaves;
                tt = Truth.bnot (Aig.Cut.truth g ~root:id ~leaves);
              }
          end
        in
        Hashtbl.replace inverted id net;
        net
  in
  let pos =
    Array.init (Graph.num_pos g) (fun i ->
        let l = Graph.po_lit g i in
        let id = Graph.node_of l in
        if Graph.is_const id then Mapped.Const (Graph.is_compl l)
        else if Graph.is_compl l then Mapped.Net (emit_inverted id)
        else Mapped.Net (emit id))
  in
  {
    Mapped.name = Graph.name g;
    npis;
    pi_names = Array.init npis (Graph.pi_name g);
    cells = Array.of_list (List.rev !cells);
    pos;
    po_names = Array.init (Graph.num_pos g) (Graph.po_name g);
  }
