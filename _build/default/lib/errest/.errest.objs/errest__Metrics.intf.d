lib/errest/metrics.mli: Aig Logic
