lib/errest/certify.mli:
