lib/errest/metrics.ml: Aig Array Logic Sim
