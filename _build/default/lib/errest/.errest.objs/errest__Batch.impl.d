lib/errest/batch.ml: Aig Array Hashtbl Logic Metrics Option Sim
