lib/errest/certify.ml:
