lib/errest/observability.ml: Aig Array Logic
