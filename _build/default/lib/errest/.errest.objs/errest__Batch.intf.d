lib/errest/batch.mli: Aig Logic Metrics
