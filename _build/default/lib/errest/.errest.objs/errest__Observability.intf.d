lib/errest/observability.mli: Aig Logic
