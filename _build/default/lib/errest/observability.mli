(** Per-pattern output sensitivity by a single backward sweep.

    [masks g ~sigs] returns, per node, a vector whose bit [m] estimates
    whether flipping the node's value in round [m] flips at least one PO,
    propagating the Boolean difference backwards edge-by-edge.  The estimate
    is exact on fanout-free trees; under reconvergence it is a heuristic in
    both directions (parallel paths may cancel a flagged flip, or jointly
    propagate an unflagged one).  This is the change-propagation half of Su
    et al.'s estimator family and serves as a cheap ranking signal; the
    authoritative answer is {!Sim.Engine.resimulate_tfo} as used by
    {!Batch}. *)

val masks : Aig.Graph.t -> sigs:Logic.Bitvec.t array -> Logic.Bitvec.t array
