module Bitvec = Logic.Bitvec

type kind = Er | Nmed | Mred

let kind_to_string = function Er -> "er" | Nmed -> "nmed" | Mred -> "mred"

let kind_of_string = function
  | "er" -> Some Er
  | "nmed" -> Some Nmed
  | "mred" -> Some Mred
  | _ -> None

let check_shapes golden approx =
  if Array.length golden <> Array.length approx then
    invalid_arg "Metrics: PO count mismatch";
  if Array.length golden > 0 then begin
    let len = Bitvec.length golden.(0) in
    Array.iter
      (fun v -> if Bitvec.length v <> len then invalid_arg "Metrics: ragged signatures")
      (Array.append golden approx)
  end

let num_rounds golden =
  if Array.length golden = 0 then 0 else Bitvec.length golden.(0)

let er ~golden ~approx =
  check_shapes golden approx;
  let len = num_rounds golden in
  if len = 0 then 0.0
  else begin
    let diff = Bitvec.create len in
    Array.iteri
      (fun i go ->
        let x = Bitvec.logxor go approx.(i) in
        Bitvec.logor_inplace diff x)
      golden;
    float_of_int (Bitvec.popcount diff) /. float_of_int len
  end

let output_values pos =
  let npos = Array.length pos in
  if npos > 62 then invalid_arg "Metrics.output_values: more than 62 outputs";
  let len = num_rounds pos in
  let values = Array.make len 0 in
  for i = 0 to npos - 1 do
    let words = Bitvec.unsafe_words pos.(i) in
    for m = 0 to len - 1 do
      let bit = (words.(m / Bitvec.word_bits) lsr (m mod Bitvec.word_bits)) land 1 in
      values.(m) <- values.(m) lor (bit lsl i)
    done
  done;
  values

let fold_ed f ~golden ~approx =
  check_shapes golden approx;
  let len = num_rounds golden in
  if len = 0 then 0.0
  else begin
    let gv = output_values golden and av = output_values approx in
    let acc = ref 0.0 in
    for m = 0 to len - 1 do
      acc := !acc +. f gv.(m) av.(m)
    done;
    !acc /. float_of_int len
  end

let mean_ed ~golden ~approx =
  fold_ed (fun g a -> float_of_int (abs (g - a))) ~golden ~approx

let nmed ~golden ~approx =
  let o = Array.length golden in
  let maxval = if o = 0 then 1.0 else (2.0 ** float_of_int o) -. 1.0 in
  mean_ed ~golden ~approx /. maxval

let mred ~golden ~approx =
  fold_ed
    (fun g a -> float_of_int (abs (g - a)) /. float_of_int (max g 1))
    ~golden ~approx

let worst_case_ed ~golden ~approx =
  check_shapes golden approx;
  if num_rounds golden = 0 then 0
  else begin
    let gv = output_values golden and av = output_values approx in
    let worst = ref 0 in
    Array.iteri (fun m g -> worst := max !worst (abs (g - av.(m)))) gv;
    !worst
  end

let measure kind ~golden ~approx =
  match kind with
  | Er -> er ~golden ~approx
  | Nmed -> nmed ~golden ~approx
  | Mred -> mred ~golden ~approx

type prepared =
  | Prep_er of Bitvec.t array
  | Prep_ed of {
      golden : Bitvec.t array;
      values : int array;
      weights : float array;  (** per-round multiplier applied to [|d|] *)
    }

let prepare kind ~golden =
  match kind with
  | Er -> Prep_er golden
  | Nmed ->
      let o = Array.length golden in
      let maxval = if o = 0 then 1.0 else (2.0 ** float_of_int o) -. 1.0 in
      let values = output_values golden in
      Prep_ed { golden; values; weights = Array.map (fun _ -> 1.0 /. maxval) values }
  | Mred ->
      let values = output_values golden in
      Prep_ed
        {
          golden;
          values;
          weights = Array.map (fun g -> 1.0 /. float_of_int (max g 1)) values;
        }

let measure_prepared prep ~approx =
  match prep with
  | Prep_er golden -> er ~golden ~approx
  | Prep_ed { golden; values; weights } ->
      check_shapes golden approx;
      let len = num_rounds golden in
      if len = 0 then 0.0
      else begin
        let av = output_values approx in
        let acc = ref 0.0 in
        for m = 0 to len - 1 do
          acc := !acc +. (float_of_int (abs (values.(m) - av.(m))) *. weights.(m))
        done;
        !acc /. float_of_int len
      end

let compare_graphs kind ~original ~approx patterns =
  if Aig.Graph.num_pis original <> Aig.Graph.num_pis approx then
    invalid_arg "Metrics.compare_graphs: PI count mismatch";
  if Aig.Graph.num_pos original <> Aig.Graph.num_pos approx then
    invalid_arg "Metrics.compare_graphs: PO count mismatch";
  let golden = Sim.Engine.simulate_pos original patterns in
  let approx = Sim.Engine.simulate_pos approx patterns in
  measure kind ~golden ~approx

let evaluate ?(seed = 20260705) ?(sample = 1 lsl 17) kind ~original ~approx =
  let npis = Aig.Graph.num_pis original in
  let patterns =
    if npis <= Sim.Patterns.exhaustive_limit && 1 lsl npis <= sample then
      Sim.Patterns.exhaustive ~npis
    else Sim.Patterns.random (Logic.Rng.create seed) ~npis ~len:sample
  in
  compare_graphs kind ~original ~approx patterns
