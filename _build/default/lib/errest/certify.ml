(* One-sided Hoeffding bound: P[mean - E > t] <= exp (-2 n t^2), so at
   confidence c the deviation is t = sqrt (ln (1 / (1 - c)) / (2 n)). *)

let check_confidence confidence =
  if confidence <= 0.0 || confidence >= 1.0 then
    invalid_arg "Certify: confidence must be in (0, 1)"

let hoeffding_margin ~samples ~confidence =
  if samples <= 0 then invalid_arg "Certify: sample count must be positive";
  check_confidence confidence;
  sqrt (log (1.0 /. (1.0 -. confidence)) /. (2.0 *. float_of_int samples))

let upper_bound ~sampled ~samples ~confidence =
  sampled +. hoeffding_margin ~samples ~confidence

let certified_le ~sampled ~samples ~confidence ~threshold =
  upper_bound ~sampled ~samples ~confidence <= threshold

let samples_needed ~margin ~confidence =
  if margin <= 0.0 then invalid_arg "Certify: margin must be positive";
  check_confidence confidence;
  int_of_float (ceil (log (1.0 /. (1.0 -. confidence)) /. (2.0 *. margin *. margin)))
