(** Error metrics between a golden and an approximate circuit (Section II-B).

    Output vectors are interpreted as unsigned integers with PO index 0 the
    least-significant bit, matching the conventions of [lib/circuits]. *)

type kind =
  | Er  (** error rate: fraction of rounds with any differing PO *)
  | Nmed  (** mean error distance normalized by [2^O - 1] *)
  | Mred  (** mean relative error distance *)

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val er : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
(** From PO signature arrays of equal shape. *)

val mean_ed : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
(** Average absolute difference of the encoded outputs.  Requires at most 62
    POs. *)

val nmed : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float
val mred : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float

val measure :
  kind -> golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> float

(** {1 Prepared measurement}

    When the same golden outputs are compared against many approximations
    (batch LAC scoring), the golden-side decode is done once. *)

type prepared

val prepare : kind -> golden:Logic.Bitvec.t array -> prepared

val measure_prepared : prepared -> approx:Logic.Bitvec.t array -> float

val worst_case_ed : golden:Logic.Bitvec.t array -> approx:Logic.Bitvec.t array -> int
(** Largest absolute error distance over the sampled rounds (not one of the
    paper's constraint metrics, but the standard companion measurement). *)

val output_values : Logic.Bitvec.t array -> int array
(** Decode PO signatures into one unsigned integer per simulation round. *)

val compare_graphs :
  kind -> original:Aig.Graph.t -> approx:Aig.Graph.t -> Logic.Bitvec.t array -> float
(** Simulate both circuits on the same pattern set and measure.  The graphs
    must agree in PI and PO counts. *)

val evaluate :
  ?seed:int ->
  ?sample:int ->
  kind ->
  original:Aig.Graph.t ->
  approx:Aig.Graph.t ->
  float
(** Final-quality measurement: exhaustive when the PI count allows (at most
    {!Sim.Patterns.exhaustive_limit} inputs, and at most [sample] rounds),
    Monte-Carlo with [sample] rounds otherwise.  Default [sample] is [2^17];
    the paper uses [10^7] rounds, see DESIGN.md §2.7. *)
