(** Statistical certification of sampled error measurements.

    Liu & Zhang's method (reference [5]) certifies that an approximate
    circuit meets its error bound with a prescribed confidence, using
    concentration bounds on the Monte-Carlo estimate; this module provides
    the same machinery for any of the sampled metrics. *)

val hoeffding_margin : samples:int -> confidence:float -> float
(** One-sided Hoeffding deviation bound for a mean of [0,1]-valued samples:
    with probability at least [confidence], the true mean is below the
    sampled mean plus this margin.  Requires [samples > 0] and
    [0 < confidence < 1]. *)

val upper_bound : sampled:float -> samples:int -> confidence:float -> float
(** Certified upper bound on the true error. *)

val certified_le :
  sampled:float -> samples:int -> confidence:float -> threshold:float -> bool
(** Does the sample certify [true error <= threshold] at this confidence? *)

val samples_needed : margin:float -> confidence:float -> int
(** Minimum sample count for a given margin at a given confidence. *)
