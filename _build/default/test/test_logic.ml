module Bitvec = Logic.Bitvec
module Truth = Logic.Truth
module Cube = Logic.Cube
module Cover = Logic.Cover

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Logic.Rng.create 42 and b = Logic.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Logic.Rng.next64 a) (Logic.Rng.next64 b)
  done

let test_rng_int_range () =
  let rng = Logic.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Logic.Rng.int rng 17 in
    check "in range" true (v >= 0 && v < 17)
  done

let test_rng_float_range () =
  let rng = Logic.Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Logic.Rng.float rng in
    check "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_split_decorrelated () =
  let rng = Logic.Rng.create 3 in
  let child = Logic.Rng.split rng in
  check "different streams" false (Logic.Rng.next64 rng = Logic.Rng.next64 child)

(* ---------- Bitvec ---------- *)

let test_bitvec_get_set () =
  let v = Bitvec.create 200 in
  Bitvec.set v 0 true;
  Bitvec.set v 63 true;
  Bitvec.set v 62 true;
  Bitvec.set v 199 true;
  check "bit 0" true (Bitvec.get v 0);
  check "bit 1" false (Bitvec.get v 1);
  check "bit 62 (word boundary)" true (Bitvec.get v 62);
  check "bit 63" true (Bitvec.get v 63);
  check "bit 199" true (Bitvec.get v 199);
  check_int "popcount" 4 (Bitvec.popcount v);
  Bitvec.set v 63 false;
  check "cleared" false (Bitvec.get v 63);
  check_int "popcount after clear" 3 (Bitvec.popcount v)

let test_bitvec_bounds () =
  let v = Bitvec.create 10 in
  Alcotest.check_raises "get oob" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Bitvec.get v 10))

let test_bitvec_string_roundtrip () =
  let s = "0110101100111010101010101010101010101011110101010101010101010111000" in
  let v = Bitvec.of_string s in
  Alcotest.(check string) "roundtrip" s (Bitvec.to_string v)

let test_bitvec_fill () =
  let v = Bitvec.create 100 in
  Bitvec.fill v true;
  check_int "all ones" 100 (Bitvec.popcount v);
  check "is_ones" true (Bitvec.is_ones v);
  Bitvec.fill v false;
  check "is_zero" true (Bitvec.is_zero v)

let test_bitvec_iter_set () =
  let v = Bitvec.of_string "0101000001" in
  let seen = ref [] in
  Bitvec.iter_set v (fun i -> seen := i :: !seen);
  Alcotest.(check (list int)) "set bits in order" [ 1; 3; 9 ] (List.rev !seen)

let bitvec_pair_gen =
  QCheck.Gen.(
    let* len = int_range 1 300 in
    let* a = list_repeat len bool in
    let* b = list_repeat len bool in
    return (Array.of_list a, Array.of_list b))

let bitvec_pair =
  QCheck.make bitvec_pair_gen ~print:(fun (a, _) ->
      Printf.sprintf "len=%d" (Array.length a))

let of_bools bits = Bitvec.init (Array.length bits) (fun i -> bits.(i))

let prop_bitvec_ops =
  QCheck.Test.make ~name:"bitvec logic matches naive" ~count:200 bitvec_pair
    (fun (a, b) ->
      let va = of_bools a and vb = of_bools b in
      let expect f = Array.init (Array.length a) (fun i -> f a.(i) b.(i)) in
      Bitvec.equal (Bitvec.logand va vb) (of_bools (expect ( && )))
      && Bitvec.equal (Bitvec.logor va vb) (of_bools (expect ( || )))
      && Bitvec.equal (Bitvec.logxor va vb) (of_bools (expect ( <> )))
      && Bitvec.equal (Bitvec.lognot va)
           (of_bools (Array.map not a))
      && Bitvec.popcount va
         = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 a
      && Bitvec.hamming va vb
         = Array.fold_left ( + ) 0
             (Array.init (Array.length a) (fun i -> if a.(i) <> b.(i) then 1 else 0)))

let prop_bitvec_inplace =
  QCheck.Test.make ~name:"in-place ops match pure ops" ~count:100 bitvec_pair
    (fun (a, b) ->
      let va = of_bools a and vb = of_bools b in
      let c = Bitvec.copy va in
      Bitvec.logand_inplace c vb;
      let d = Bitvec.copy va in
      Bitvec.logor_inplace d vb;
      let e = Bitvec.copy va in
      Bitvec.logxor_inplace e vb;
      Bitvec.equal c (Bitvec.logand va vb)
      && Bitvec.equal d (Bitvec.logor va vb)
      && Bitvec.equal e (Bitvec.logxor va vb))

(* ---------- Truth ---------- *)

let test_truth_var () =
  let t = Truth.var 3 1 in
  for m = 0 to 7 do
    check "projection" ((m lsr 1) land 1 = 1) (Truth.get t m)
  done

let test_truth_var_large () =
  (* Variables above the word boundary. *)
  let t = Truth.var 8 7 in
  check "m=127" false (Truth.get t 127);
  check "m=128" true (Truth.get t 128);
  check "m=255" true (Truth.get t 255);
  check_int "count" 128 (Truth.count_ones t)

let truth_gen nvars =
  QCheck.Gen.(
    let* bits = list_repeat (1 lsl nvars) bool in
    return (Truth.of_fun nvars (fun m -> List.nth bits m)))

let arb_truth nvars =
  QCheck.make (truth_gen nvars) ~print:(fun t -> "0x" ^ Truth.to_hex t)

let prop_shannon nvars =
  QCheck.Test.make
    ~name:(Printf.sprintf "shannon expansion holds (%d vars)" nvars)
    ~count:100 (arb_truth nvars)
    (fun t ->
      List.for_all
        (fun v ->
          let x = Truth.var nvars v in
          let recomposed =
            Truth.bor
              (Truth.band x (Truth.cofactor1 t v))
              (Truth.band (Truth.bnot x) (Truth.cofactor0 t v))
          in
          Truth.equal recomposed t)
        (List.init nvars (fun i -> i)))

let prop_support =
  QCheck.Test.make ~name:"support matches depends_on" ~count:100 (arb_truth 5)
    (fun t ->
      let sup = Truth.support t in
      List.for_all (fun v -> List.mem v sup = Truth.depends_on t v)
        (List.init 5 (fun i -> i)))

let prop_shrink_expand =
  QCheck.Test.make ~name:"shrink_to_support then expand is identity" ~count:100
    (arb_truth 6) (fun t ->
      let small, sup = Truth.shrink_to_support t in
      let placement = Array.of_list sup in
      Truth.equal (Truth.expand small ~into:6 ~placement) t)

let test_truth_cofactor_word_boundary () =
  (* 8-variable table: cofactor on a variable above bit 6. *)
  let t = Truth.band (Truth.var 8 7) (Truth.var 8 0) in
  check "cof1(7) = var0" true (Truth.equal (Truth.cofactor1 t 7) (Truth.var 8 0));
  check "cof0(7) = const0" true (Truth.is_const0 (Truth.cofactor0 t 7))

let test_truth_hex () =
  let t = Truth.band (Truth.var 4 0) (Truth.var 4 1) in
  Alcotest.(check string) "hex of and2 over 4 vars" "8888" (Truth.to_hex t)

(* ---------- Cube / Cover ---------- *)

let test_cube_basics () =
  let c = Cube.add_lit (Cube.lit 0 true) 2 false in
  check "contains 001" true (Cube.contains_minterm c 0b001);
  check "contains 101" false (Cube.contains_minterm c 0b101);
  check "contains 011" true (Cube.contains_minterm c 0b011);
  check_int "lits" 2 (Cube.num_lits c);
  Alcotest.(check string) "render" "1-0" (Cube.to_string 3 c)

let test_cube_contradiction () =
  Alcotest.check_raises "contradictory"
    (Invalid_argument "Cube.add_lit: contradictory literal") (fun () ->
      ignore (Cube.add_lit (Cube.lit 1 true) 1 false))

let test_cube_subsumes () =
  let big = Cube.lit 0 true in
  let small = Cube.add_lit (Cube.lit 0 true) 1 true in
  check "big subsumes small" true (Cube.subsumes big small);
  check "small does not subsume big" false (Cube.subsumes small big)

let test_cube_intersect () =
  let a = Cube.lit 0 true and b = Cube.lit 0 false in
  check "disjoint" true (Cube.intersect a b = None);
  match Cube.intersect a (Cube.lit 1 true) with
  | Some c -> check_int "merged lits" 2 (Cube.num_lits c)
  | None -> Alcotest.fail "expected overlap"

let test_cover_truth () =
  (* x0 x1 + !x0 x2 (a mux). *)
  let c =
    Cover.make 3
      [ Cube.add_lit (Cube.lit 0 true) 1 true; Cube.add_lit (Cube.lit 0 false) 2 true ]
  in
  let expected = Truth.of_fun 3 (fun m ->
      if m land 1 = 1 then (m lsr 1) land 1 = 1 else (m lsr 2) land 1 = 1)
  in
  check "mux function" true (Truth.equal (Cover.to_truth c) expected)

let test_cover_subsumed () =
  let c =
    Cover.make 2 [ Cube.lit 0 true; Cube.add_lit (Cube.lit 0 true) 1 true ]
  in
  let r = Cover.remove_subsumed c in
  check_int "one cube left" 1 (Cover.num_cubes r);
  check "same function" true (Truth.equal (Cover.to_truth r) (Cover.to_truth c))

let test_cover_eval_sigs () =
  let rng = Logic.Rng.create 11 in
  let c =
    Cover.make 3
      [ Cube.add_lit (Cube.lit 0 true) 1 true; Cube.add_lit (Cube.lit 0 false) 2 true ]
  in
  let sigs = Array.init 3 (fun _ -> Bitvec.random rng 150) in
  let out = Cover.eval_sigs c ~pos_sigs:sigs in
  for m = 0 to 149 do
    let minterm = ref 0 in
    for v = 0 to 2 do
      if Bitvec.get sigs.(v) m then minterm := !minterm lor (1 lsl v)
    done;
    check "sig eval matches minterm eval" (Cover.eval_minterm c !minterm) (Bitvec.get out m)
  done

(* ---------- Isop / Espresso ---------- *)

let on_dc_gen nvars =
  QCheck.Gen.(
    let* on_bits = list_repeat (1 lsl nvars) bool in
    let* dc_bits = list_repeat (1 lsl nvars) (frequency [ (3, return false); (1, return true) ]) in
    let on = Truth.of_fun nvars (fun m -> List.nth on_bits m && not (List.nth dc_bits m)) in
    let dc = Truth.of_fun nvars (fun m -> List.nth dc_bits m) in
    return (on, dc))

let arb_on_dc nvars =
  QCheck.make (on_dc_gen nvars) ~print:(fun (on, dc) ->
      Printf.sprintf "on=%s dc=%s" (Truth.to_hex on) (Truth.to_hex dc))

let prop_isop_interval nvars =
  QCheck.Test.make
    ~name:(Printf.sprintf "isop stays in [on, on+dc] (%d vars)" nvars)
    ~count:200 (arb_on_dc nvars)
    (fun (on, dc) ->
      let cover = Logic.Isop.compute ~on ~dc in
      Cover.covers cover on && Cover.within cover (Truth.bor on dc))

let prop_isop_irredundant =
  QCheck.Test.make ~name:"isop has no single-cube redundancy" ~count:100
    (arb_on_dc 4) (fun (on, dc) ->
      let cover = Logic.Isop.compute ~on ~dc in
      let cubes = cover.Cover.cubes in
      (* Dropping any one cube must lose some ON-minterm. *)
      List.for_all
        (fun c ->
          let rest = List.filter (fun x -> not (Cube.equal x c)) cubes in
          not (Cover.covers (Cover.make 4 rest) on))
        cubes)

let prop_espresso_interval =
  QCheck.Test.make ~name:"espresso stays in interval and beats isop" ~count:100
    (arb_on_dc 5) (fun (on, dc) ->
      let isop = Logic.Isop.compute ~on ~dc in
      let esp = Logic.Espresso.minimize ~on ~dc in
      Cover.covers esp on
      && Cover.within esp (Truth.bor on dc)
      && Logic.Espresso.cost esp <= Logic.Espresso.cost isop)

let test_espresso_known () =
  (* on = {000, 001, 011, 010} over 3 vars: a single cube !x2. *)
  let on = Truth.of_fun 3 (fun m -> m < 4) in
  let cover = Logic.Espresso.minimize ~on ~dc:(Truth.const0 3) in
  check_int "one cube" 1 (Cover.num_cubes cover);
  check_int "one literal" 1 (Cover.num_lits cover)

let test_espresso_with_dc () =
  (* on = {3}, dc = {1, 2}: minimizes to a single-literal cube. *)
  let on = Truth.of_fun 2 (fun m -> m = 3) in
  let dc = Truth.of_fun 2 (fun m -> m = 1 || m = 2) in
  let cover = Logic.Espresso.minimize ~on ~dc in
  check_int "single cube" 1 (Cover.num_cubes cover);
  check_int "single literal" 1 (Cover.num_lits cover)

(* ---------- Factor ---------- *)

let prop_factor_correct =
  QCheck.Test.make ~name:"factored expression equals cover" ~count:200
    (arb_on_dc 5) (fun (on, dc) ->
      let cover = Logic.Isop.compute ~on ~dc in
      let expr = Logic.Factor.of_cover cover in
      let tt = Cover.to_truth cover in
      let ok = ref true in
      for m = 0 to 31 do
        let point = Array.init 5 (fun i -> (m lsr i) land 1 = 1) in
        if Logic.Factor.eval expr point <> Truth.get tt m then ok := false
      done;
      !ok)

let test_factor_shares_literals () =
  (* ab + ac should factor as a(b + c): 2 ANDs. *)
  let cover =
    Cover.make 3
      [ Cube.add_lit (Cube.lit 0 true) 1 true; Cube.add_lit (Cube.lit 0 true) 2 true ]
  in
  let expr = Logic.Factor.of_cover cover in
  check_int "factored cost" 2 (Logic.Factor.and2_cost expr)

let () =
  Alcotest.run "logic"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "split" `Quick test_rng_split_decorrelated;
        ] );
      ( "bitvec",
        [
          Alcotest.test_case "get/set" `Quick test_bitvec_get_set;
          Alcotest.test_case "bounds" `Quick test_bitvec_bounds;
          Alcotest.test_case "string roundtrip" `Quick test_bitvec_string_roundtrip;
          Alcotest.test_case "fill" `Quick test_bitvec_fill;
          Alcotest.test_case "iter_set" `Quick test_bitvec_iter_set;
        ]
        @ Util.qcheck_cases [ prop_bitvec_ops; prop_bitvec_inplace ] );
      ( "truth",
        [
          Alcotest.test_case "var" `Quick test_truth_var;
          Alcotest.test_case "var above word" `Quick test_truth_var_large;
          Alcotest.test_case "cofactor above word" `Quick test_truth_cofactor_word_boundary;
          Alcotest.test_case "hex" `Quick test_truth_hex;
        ]
        @ Util.qcheck_cases
            [ prop_shannon 4; prop_shannon 8; prop_support; prop_shrink_expand ] );
      ( "cube-cover",
        [
          Alcotest.test_case "cube basics" `Quick test_cube_basics;
          Alcotest.test_case "cube contradiction" `Quick test_cube_contradiction;
          Alcotest.test_case "cube subsumes" `Quick test_cube_subsumes;
          Alcotest.test_case "cube intersect" `Quick test_cube_intersect;
          Alcotest.test_case "cover truth" `Quick test_cover_truth;
          Alcotest.test_case "remove subsumed" `Quick test_cover_subsumed;
          Alcotest.test_case "signature eval" `Quick test_cover_eval_sigs;
        ] );
      ( "isop-espresso",
        [
          Alcotest.test_case "espresso known" `Quick test_espresso_known;
          Alcotest.test_case "espresso dc" `Quick test_espresso_with_dc;
        ]
        @ Util.qcheck_cases
            [
              prop_isop_interval 4;
              prop_isop_interval 7;
              prop_isop_irredundant;
              prop_espresso_interval;
            ] );
      ( "factor",
        [ Alcotest.test_case "shares literals" `Quick test_factor_shares_literals ]
        @ Util.qcheck_cases [ prop_factor_correct ] );
    ]
