(* End-to-end pipelines: benchmark generator -> ALS flow -> technology
   mapping -> file formats, with functional verification at each seam. *)

module Graph = Aig.Graph
module Metrics = Errest.Metrics

let check = Alcotest.(check bool)

let test_asic_pipeline_nmed () =
  (* mtp-style ASIC flow under an NMED constraint, like Table V rows.  The
     8-PI space is evaluated exhaustively, so flow errors are exact. *)
  let g = Circuits.Multipliers.array_mult ~width:4 in
  let config =
    { (Core.Config.default ~metric:Metrics.Nmed ~threshold:0.02) with
      Core.Config.eval_rounds = 256; max_iters = 300; seed = 1 }
  in
  let approx, _ = Core.Flow.run ~config g in
  (* Map both and compare areas. *)
  let m_orig = Techmap.Cellmap.run (Graph.compact g) in
  let m_appr = Techmap.Cellmap.run approx in
  check "approx mapped area smaller" true
    (Techmap.Mapped.area m_appr < Techmap.Mapped.area m_orig);
  (* Mapped approximate netlist equals the approximate AIG (mapping itself
     must stay exact). *)
  let pats = Sim.Patterns.exhaustive ~npis:(Graph.num_pis approx) in
  let a = Sim.Engine.simulate_pos approx pats in
  let b = Techmap.Mapped.simulate m_appr pats in
  check "mapping exact" true (Array.for_all2 Logic.Bitvec.equal a b);
  (* The measured error of the mapped circuit equals that of the AIG. *)
  let golden = Sim.Engine.simulate_pos g pats in
  let nmed_mapped = Metrics.nmed ~golden ~approx:b in
  check "error within threshold after mapping" true (nmed_mapped <= 0.02 +. 1e-9)

let test_fpga_pipeline_er () =
  (* EPFL-control-style FPGA flow, like Table VI rows. *)
  let g = Circuits.Epfl_control.priority ~n:16 () in
  let config =
    { (Core.Config.default ~metric:Metrics.Er ~threshold:0.01) with
      Core.Config.eval_rounds = 4096; max_iters = 100; seed = 2 }
  in
  let approx, _ = Core.Flow.run ~config g in
  let m_orig = Techmap.Lutmap.run (Graph.compact g) in
  let m_appr = Techmap.Lutmap.run approx in
  check "LUT count not larger" true
    (Techmap.Mapped.num_cells m_appr <= Techmap.Mapped.num_cells m_orig);
  let exact = Metrics.evaluate Metrics.Er ~original:g ~approx in
  check "error sane" true (exact <= 0.05)

let test_blif_export_of_approx () =
  let g = Circuits.Adders.ripple_carry ~width:6 in
  let config =
    { (Core.Config.default ~metric:Metrics.Er ~threshold:0.02) with
      Core.Config.eval_rounds = 2048; max_iters = 60; seed = 3 }
  in
  let approx, _ = Core.Flow.run ~config g in
  let round_tripped = Circuit_io.Blif.parse (Circuit_io.Blif.graph_to_string approx) in
  check "approx survives blif roundtrip" true (Util.equivalent approx round_tripped)

let test_alsrac_beats_or_matches_nothing_lost () =
  (* Both methods on the same instance; ALSRAC should not be (much) worse,
     and both must respect the constraint on their evaluation sample.  We
     assert constraint-respect and record relative areas without a hard
     dominance assertion (single instance, sampled errors). *)
  let g = Circuits.Multipliers.wallace ~width:4 in
  let threshold = 0.05 in
  let acfg =
    { (Core.Config.default ~metric:Metrics.Er ~threshold) with
      Core.Config.eval_rounds = 256; max_iters = 150; seed = 4 }
  in
  let approx_a, ra = Core.Flow.run ~config:acfg g in
  let scfg =
    { (Baselines.Sasimi.default_config ~metric:Metrics.Er ~threshold) with
      Baselines.Sasimi.eval_rounds = 256; max_iters = 150; seed = 4 }
  in
  let approx_s, rs = Baselines.Sasimi.run ~config:scfg g in
  check "alsrac reduced" true (ra.Core.Flow.output_ands < ra.Core.Flow.input_ands);
  check "sasimi not larger" true
    (rs.Baselines.Sasimi.output_ands <= rs.Baselines.Sasimi.input_ands);
  let ea = Metrics.evaluate Metrics.Er ~original:g ~approx:approx_a in
  let es = Metrics.evaluate Metrics.Er ~original:g ~approx:approx_s in
  check "alsrac exact error bounded" true (ea <= 2.0 *. threshold);
  check "sasimi exact error bounded" true (es <= 2.0 *. threshold)

let test_verilog_export_of_mapped_approx () =
  let g = Circuits.Alu.alu ~width:4 () in
  let config =
    { (Core.Config.default ~metric:Metrics.Er ~threshold:0.03) with
      Core.Config.eval_rounds = 4096; max_iters = 60; seed = 5 }
  in
  let approx, _ = Core.Flow.run ~config g in
  let mapped = Techmap.Cellmap.run approx in
  let v = Circuit_io.Verilog.mapped_to_string mapped in
  check "verilog nonempty" true (String.length v > 100);
  let blif = Circuit_io.Blif.mapped_to_string mapped in
  let back = Circuit_io.Blif.parse blif in
  check "mapped blif equivalent to approx AIG" true (Util.equivalent approx back)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "asic nmed" `Slow test_asic_pipeline_nmed;
          Alcotest.test_case "fpga er" `Slow test_fpga_pipeline_er;
          Alcotest.test_case "blif export" `Slow test_blif_export_of_approx;
          Alcotest.test_case "alsrac vs sasimi" `Slow test_alsrac_beats_or_matches_nothing_lost;
          Alcotest.test_case "verilog export" `Slow test_verilog_export_of_mapped_approx;
        ] );
    ]
