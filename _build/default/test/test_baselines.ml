module Graph = Aig.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Su's method (SASIMI) ---------- *)

let test_sasimi_zero_threshold () =
  (* Threshold 0 with exhaustive evaluation: only error-free substitutions,
     result must stay equivalent. *)
  let g = Circuits.Adders.ripple_carry ~width:4 in
  let config =
    { (Baselines.Sasimi.default_config ~metric:Errest.Metrics.Er ~threshold:0.0) with
      Baselines.Sasimi.eval_rounds = 512; max_iters = 50 }
  in
  let approx, report = Baselines.Sasimi.run ~config g in
  check "equivalent" true (Util.equivalent g approx);
  check "error zero" true (report.Baselines.Sasimi.final_est_error = 0.0)

let test_sasimi_reduces_area () =
  let g = Circuits.Multipliers.array_mult ~width:4 in
  let config =
    { (Baselines.Sasimi.default_config ~metric:Errest.Metrics.Er ~threshold:0.05) with
      Baselines.Sasimi.eval_rounds = 256; max_iters = 100; seed = 3 }
  in
  let approx, report = Baselines.Sasimi.run ~config g in
  check "area reduced" true
    (report.Baselines.Sasimi.output_ands < report.Baselines.Sasimi.input_ands);
  check "sampled error within threshold" true
    (report.Baselines.Sasimi.final_est_error <= 0.05 +. 1e-9);
  check "interface preserved" true
    (Graph.num_pis approx = Graph.num_pis g && Graph.num_pos approx = Graph.num_pos g)

let test_sasimi_deterministic () =
  let g = Circuits.Adders.ripple_carry ~width:6 in
  let config =
    { (Baselines.Sasimi.default_config ~metric:Errest.Metrics.Er ~threshold:0.02) with
      Baselines.Sasimi.eval_rounds = 256; max_iters = 60; seed = 5 }
  in
  let _, r1 = Baselines.Sasimi.run ~config g in
  let _, r2 = Baselines.Sasimi.run ~config g in
  check_int "same size" r1.Baselines.Sasimi.output_ands r2.Baselines.Sasimi.output_ands

(* ---------- Liu's method (MCMC) ---------- *)

let test_mcmc_respects_threshold () =
  let g = Circuits.Multipliers.wallace ~width:4 in
  let config =
    { (Baselines.Mcmc.default_config ~metric:Errest.Metrics.Er ~threshold:0.03) with
      Baselines.Mcmc.eval_rounds = 256; proposals = 300; seed = 7 }
  in
  let approx, report = Baselines.Mcmc.run ~config g in
  check "sampled error within threshold" true
    (report.Baselines.Mcmc.final_est_error <= 0.03 +. 1e-9);
  check "not larger" true
    (report.Baselines.Mcmc.output_ands <= report.Baselines.Mcmc.input_ands);
  check "interface preserved" true
    (Graph.num_pis approx = Graph.num_pis g && Graph.num_pos approx = Graph.num_pos g);
  check "chain ran" true (report.Baselines.Mcmc.proposals_tried = 300)

let test_mcmc_deterministic () =
  let g = Circuits.Adders.ripple_carry ~width:5 in
  let config =
    { (Baselines.Mcmc.default_config ~metric:Errest.Metrics.Er ~threshold:0.05) with
      Baselines.Mcmc.eval_rounds = 256; proposals = 200; seed = 11 }
  in
  let _, r1 = Baselines.Mcmc.run ~config g in
  let _, r2 = Baselines.Mcmc.run ~config g in
  check_int "same size" r1.Baselines.Mcmc.output_ands r2.Baselines.Mcmc.output_ands;
  check_int "same accepts" r1.Baselines.Mcmc.accepted r2.Baselines.Mcmc.accepted

let test_mcmc_zero_threshold_equivalent () =
  let g = Circuits.Adders.ripple_carry ~width:4 in
  let config =
    { (Baselines.Mcmc.default_config ~metric:Errest.Metrics.Er ~threshold:0.0) with
      Baselines.Mcmc.eval_rounds = 512; proposals = 200; seed = 13 }
  in
  let approx, _ = Baselines.Mcmc.run ~config g in
  check "equivalent" true (Util.equivalent g approx)

let () =
  Alcotest.run "baselines"
    [
      ( "sasimi",
        [
          Alcotest.test_case "zero threshold" `Quick test_sasimi_zero_threshold;
          Alcotest.test_case "reduces area" `Quick test_sasimi_reduces_area;
          Alcotest.test_case "deterministic" `Quick test_sasimi_deterministic;
        ] );
      ( "mcmc",
        [
          Alcotest.test_case "threshold respected" `Quick test_mcmc_respects_threshold;
          Alcotest.test_case "deterministic" `Quick test_mcmc_deterministic;
          Alcotest.test_case "zero threshold" `Quick test_mcmc_zero_threshold_equivalent;
        ] );
    ]
