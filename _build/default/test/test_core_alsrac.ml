module Graph = Aig.Graph
module Bitvec = Logic.Bitvec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Divisor selection (Algorithm 1) ---------- *)

let test_divisor_sets_shape () =
  (* y = (a&b) & (a&c): fanins of y are {ab, ac}; removal sets are the two
     singletons; replacement sets pair each remaining fanin with TFI nodes. *)
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g and c = Graph.add_pi g in
  let ab = Graph.and_ g a b in
  let ac = Graph.and_ g a c in
  let y = Graph.and_ g ab ac in
  ignore (Graph.add_po g y);
  let sets = Core.Divisor.select g ~max_tfi:100 (Graph.node_of y) in
  check "nonempty" true (sets <> []);
  (* First set is a single fanin (remove-one). *)
  check_int "first set size" 1 (Array.length (List.hd sets));
  List.iter
    (fun s ->
      check "size 1 or 2" true (Array.length s >= 1 && Array.length s <= 2);
      check "target not a divisor" false (Array.mem (Graph.node_of y) s))
    sets;
  (* No duplicates. *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      check "no duplicate set" false (Hashtbl.mem tbl s);
      Hashtbl.replace tbl s ())
    sets

let test_divisor_iter_stops () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  let x = Graph.and_ g a b in
  ignore (Graph.add_po g x);
  let count = ref 0 in
  Core.Divisor.iter_sets g ~max_tfi:100 (Graph.node_of x) (fun _ ->
      incr count;
      `Stop);
  check_int "stopped after one" 1 !count

(* ---------- The paper's worked example (Examples 1, 3, 4) ---------- *)

(* Signatures observed at divisors {u, z} and node v over the 5 selected PI
   patterns of Example 1: uz = {00, 10, 10, 01, 01}, v = {1, 0, 0, 0, 0}. *)
let example_sigs () =
  let u = Bitvec.of_string "01100" in
  let z = Bitvec.of_string "00011" in
  let v = Bitvec.of_string "10000" in
  (* Node layout: 0 unused, 1 = u, 2 = z, 3 = v. *)
  [| Bitvec.create 5; u; z; v |]

let test_example3_feasibility () =
  let sigs = example_sigs () in
  let care = Core.Care.scan ~sigs ~node:3 ~divisors:[| 1; 2 |] ~rounds:5 () in
  check "feasible (Example 3)" true (Core.Feasibility.ok care);
  check_int "three care tuples (Table II)" 3 care.Core.Care.care_count;
  Alcotest.(check (list int)) "tuples 00,01,10" [ 0; 1; 2 ] (Core.Care.care_tuples care)

let test_example4_resub_function () =
  let sigs = example_sigs () in
  let care = Core.Care.scan ~sigs ~node:3 ~divisors:[| 1; 2 |] ~rounds:5 () in
  let cover = Core.Resub.derive care in
  (* Expected v_hat = !u & !z (Table II with the don't-care at 11 set to 0). *)
  let tt = Logic.Cover.to_truth cover in
  let expected =
    Logic.Truth.band
      (Logic.Truth.bnot (Logic.Truth.var 2 0))
      (Logic.Truth.bnot (Logic.Truth.var 2 1))
  in
  check "v = NOR(u,z) (Example 4)" true (Logic.Truth.equal tt expected)

let test_example2_infeasibility () =
  (* Full exhaustive simulation of Table I: uz = 10 appears with v = 1 (at
     abcd=0001) and v = 0 (at abcd=0010): infeasible. *)
  let u = Bitvec.of_string "0111011101110111" in
  let z = Bitvec.of_string "0000110011001100" in
  let v = Bitvec.of_string "1100000000110000" in
  let sigs = [| Bitvec.create 16; u; z; v |] in
  let care = Core.Care.scan ~sigs ~node:3 ~divisors:[| 1; 2 |] ~rounds:16 () in
  check "infeasible (Example 2)" false (Core.Feasibility.ok care)

let test_care_unseen_tuples_are_dc () =
  let sigs = example_sigs () in
  let care = Core.Care.scan ~sigs ~node:3 ~divisors:[| 1; 2 |] ~rounds:5 () in
  let on, dc = Core.Resub.tables care in
  check "tuple 11 is dc" true (Logic.Truth.get dc 3);
  check "tuple 00 is on" true (Logic.Truth.get on 0);
  check "on and dc disjoint" true (Logic.Truth.is_const0 (Logic.Truth.band on dc))

(* ---------- LAC generation (Algorithm 2) ---------- *)

let redundant_circuit () =
  (* f = (a & b) | (a & b & c): node (a&b&c) is approximable/redundant-ish. *)
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g and c = Graph.add_pi g in
  let ab = Graph.and_ g a b in
  let abc = Graph.and_ g ab c in
  ignore (Graph.add_po g (Aig.Builder.or_ g ab abc));
  g

let test_lac_generation () =
  let g = redundant_circuit () in
  let config = Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.1 in
  let rng = Logic.Rng.create 3 in
  let pats = Sim.Patterns.random rng ~npis:3 ~len:32 in
  let sigs = Sim.Engine.simulate g pats in
  let lacs = Core.Lac.generate g ~config ~sigs ~rounds:32 in
  check "found candidates" true (lacs <> []);
  List.iter
    (fun (lac : Core.Lac.t) ->
      check "non-negative gain" true (lac.Core.Lac.gain >= 0);
      check "divisors below target" true
        (Array.for_all (fun d -> d < lac.Core.Lac.target) lac.Core.Lac.divisors))
    lacs

let test_lac_respects_limit () =
  let g = redundant_circuit () in
  let config =
    { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.1) with
      Core.Config.lac_limit = 1 }
  in
  let rng = Logic.Rng.create 3 in
  let pats = Sim.Patterns.random rng ~npis:3 ~len:32 in
  let sigs = Sim.Engine.simulate g pats in
  let lacs = Core.Lac.generate g ~config ~sigs ~rounds:32 in
  (* At most one LAC per node. *)
  let per_node = Hashtbl.create 8 in
  List.iter
    (fun (lac : Core.Lac.t) ->
      let n = Option.value ~default:0 (Hashtbl.find_opt per_node lac.Core.Lac.target) in
      Hashtbl.replace per_node lac.Core.Lac.target (n + 1))
    lacs;
  Hashtbl.iter (fun _ n -> check_int "L=1 respected" 1 n) per_node

(* ---------- Flow (Algorithm 3) ---------- *)

let test_flow_zero_threshold_keeps_function () =
  (* With threshold 0 and exhaustive evaluation, only error-free LACs are
     applied, so the result is exactly equivalent. *)
  let g = redundant_circuit () in
  let config =
    { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.0) with
      Core.Config.eval_rounds = 8; max_iters = 20 }
  in
  let approx, report = Core.Flow.run ~config g in
  check "equivalent" true (Util.equivalent g approx);
  check "report consistent" true (report.Core.Flow.output_ands = Graph.num_ands approx)

let test_flow_reduces_area_under_er () =
  (* Random control logic (cavlc class) at ER 5%: 10 PIs, so the evaluation
     set is exhaustive and all flow errors are exact. *)
  let g = Circuits.Epfl_control.cavlc () in
  let config =
    { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.05) with
      Core.Config.eval_rounds = 2048; max_iters = 300; seed = 7 }
  in
  let approx, report = Core.Flow.run ~config g in
  check "area reduced" true (Graph.num_ands approx < Graph.num_ands (Graph.compact g));
  check "sampled error within threshold" true
    (report.Core.Flow.final_est_error <= 0.05 +. 1e-9);
  (* Exhaustive evaluation: the measured error is exact. *)
  let exact = Errest.Metrics.evaluate Errest.Metrics.Er ~original:g ~approx in
  check "exact error within threshold" true (exact <= 0.05 +. 1e-9);
  check "interface preserved" true
    (Graph.num_pis approx = Graph.num_pis g && Graph.num_pos approx = Graph.num_pos g)

let test_flow_nmed () =
  let g = Circuits.Multipliers.wallace ~width:4 in
  let config =
    { (Core.Config.default ~metric:Errest.Metrics.Nmed ~threshold:0.01) with
      Core.Config.eval_rounds = 256; max_iters = 200; seed = 11 }
  in
  let approx, report = Core.Flow.run ~config g in
  check "area reduced" true (report.Core.Flow.output_ands < report.Core.Flow.input_ands);
  let exact = Errest.Metrics.evaluate Errest.Metrics.Nmed ~original:g ~approx in
  check "nmed within 2x threshold" true (exact <= 0.02)

let test_flow_deterministic () =
  let g = Circuits.Multipliers.array_mult ~width:4 in
  let config =
    { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.03) with
      Core.Config.eval_rounds = 256; max_iters = 100; seed = 13 }
  in
  let a1, r1 = Core.Flow.run ~config g in
  let a2, r2 = Core.Flow.run ~config g in
  check_int "same result size" (Graph.num_ands a1) (Graph.num_ands a2);
  check_int "same applied count" r1.Core.Flow.applied r2.Core.Flow.applied

let test_flow_rounds_shrink () =
  (* threshold 0 on an irredundant circuit: no (error-free, gainful) LAC
     exists, so N must shrink over the patience window and the flow stop. *)
  let g = Circuits.Adders.kogge_stone ~width:4 in
  let config =
    { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.0) with
      Core.Config.eval_rounds = 512; max_iters = 50; seed = 17; sim_rounds = 32 }
  in
  let approx, report = Core.Flow.run ~config g in
  check "terminates" true (report.Core.Flow.final_rounds <= 32);
  check "equivalent at zero threshold" true (Util.equivalent g approx)

let test_odc_masked_scan () =
  (* The Example-2 conflict disappears when the conflicting rounds are
     masked out as unobservable. *)
  let u = Bitvec.of_string "0111011101110111" in
  let z = Bitvec.of_string "0000110011001100" in
  let v = Bitvec.of_string "1100000000110000" in
  let sigs = [| Bitvec.create 16; u; z; v |] in
  let unmasked = Core.Care.scan ~sigs ~node:3 ~divisors:[| 1; 2 |] ~rounds:16 () in
  check "conflict without mask" false (Core.Feasibility.ok unmasked);
  (* Mask the minority rounds of both conflicting tuples (uz=10 conflicts
     through round 1; uz=11 through rounds 10 and 11). *)
  let mask = Bitvec.init 16 (fun m -> not (m = 1 || m = 10 || m = 11)) in
  let masked = Core.Care.scan ~mask ~sigs ~node:3 ~divisors:[| 1; 2 |] ~rounds:16 () in
  check "feasible under mask" true (Core.Feasibility.ok masked)

let test_flow_with_odc () =
  let g = Circuits.Epfl_control.cavlc () in
  let config =
    { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.05) with
      Core.Config.eval_rounds = 2048; max_iters = 300; seed = 7; use_odc = true }
  in
  let approx, _ = Core.Flow.run ~config g in
  let exact = Errest.Metrics.evaluate Errest.Metrics.Er ~original:g ~approx in
  check "odc flow respects threshold (exhaustive eval)" true (exact <= 0.05 +. 1e-9);
  check "odc flow reduced area" true
    (Graph.num_ands approx < Graph.num_ands (Graph.compact g))

let test_flow_depth_guard () =
  (* With a tight depth guard the result must stay within the bound; the
     kogge-stone adder is the circuit most tempted to serialize. *)
  let g = Circuits.Adders.kogge_stone ~width:8 in
  let original_depth = Aig.Topo.depth (Aig.Resyn.compress2 (Graph.compact g)) in
  let config =
    { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.10) with
      Core.Config.eval_rounds = 2048; max_iters = 100; seed = 19;
      max_depth_growth = 1.0 }
  in
  let approx, _ = Core.Flow.run ~config g in
  check "depth preserved" true (Aig.Topo.depth approx <= original_depth)

let () =
  Alcotest.run "core-alsrac"
    [
      ( "divisors",
        [
          Alcotest.test_case "set shapes" `Quick test_divisor_sets_shape;
          Alcotest.test_case "early stop" `Quick test_divisor_iter_stops;
        ] );
      ( "paper-examples",
        [
          Alcotest.test_case "example 3: feasibility" `Quick test_example3_feasibility;
          Alcotest.test_case "example 4: resub function" `Quick test_example4_resub_function;
          Alcotest.test_case "example 2: infeasibility" `Quick test_example2_infeasibility;
          Alcotest.test_case "unseen tuples are dc" `Quick test_care_unseen_tuples_are_dc;
        ] );
      ( "lac",
        [
          Alcotest.test_case "generation" `Quick test_lac_generation;
          Alcotest.test_case "limit" `Quick test_lac_respects_limit;
        ] );
      ( "flow",
        [
          Alcotest.test_case "zero threshold" `Quick test_flow_zero_threshold_keeps_function;
          Alcotest.test_case "er reduces area" `Quick test_flow_reduces_area_under_er;
          Alcotest.test_case "nmed" `Quick test_flow_nmed;
          Alcotest.test_case "deterministic" `Quick test_flow_deterministic;
          Alcotest.test_case "rounds shrink" `Quick test_flow_rounds_shrink;
          Alcotest.test_case "depth guard" `Quick test_flow_depth_guard;
          Alcotest.test_case "odc masked scan" `Quick test_odc_masked_scan;
          Alcotest.test_case "odc flow" `Quick test_flow_with_odc;
        ] );
    ]
