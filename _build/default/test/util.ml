(* Shared helpers for the test-suite. *)

module Graph = Aig.Graph

(* Deterministic random AIG: [nands] AND attempts over [npis] inputs. *)
let random_graph rng ~npis ~nands =
  let g = Graph.create ~name:"random" () in
  let lits = ref [] in
  for _ = 1 to npis do
    lits := Graph.add_pi g :: !lits
  done;
  let pool = ref (Array.of_list !lits) in
  for _ = 1 to nands do
    let pick () =
      let l = !pool.(Logic.Rng.int rng (Array.length !pool)) in
      if Logic.Rng.bool rng then Graph.lit_not l else l
    in
    let l = Graph.and_ g (pick ()) (pick ()) in
    pool := Array.append !pool [| l |]
  done;
  (* A handful of POs over the most recent signals. *)
  let n = Array.length !pool in
  let npos = min 4 n in
  for i = 0 to npos - 1 do
    let l = !pool.(n - 1 - i) in
    ignore (Graph.add_po g (if Logic.Rng.bool rng then Graph.lit_not l else l))
  done;
  g

(* Reference evaluator: direct recursion, no word-parallel tricks. *)
let eval_naive g (inputs : bool array) =
  let n = Graph.num_nodes g in
  let values = Array.make n None in
  let rec node id =
    match values.(id) with
    | Some v -> v
    | None ->
        let v =
          if Graph.is_const id then false
          else if Graph.is_pi g id then inputs.(Graph.pi_index g id)
          else
            let lit l = node (Graph.node_of l) <> Graph.is_compl l in
            lit (Graph.fanin0 g id) && lit (Graph.fanin1 g id)
        in
        values.(id) <- Some v;
        v
  in
  Array.init (Graph.num_pos g) (fun i ->
      let l = Graph.po_lit g i in
      node (Graph.node_of l) <> Graph.is_compl l)

let bools_of_int v width = Array.init width (fun i -> (v lsr i) land 1 = 1)

let int_of_bools bits =
  Array.to_list bits |> List.rev
  |> List.fold_left (fun acc b -> (2 * acc) + if b then 1 else 0) 0

(* Functional equivalence by exhaustive naive evaluation (small PI counts). *)
let equivalent g1 g2 =
  let npis = Graph.num_pis g1 in
  assert (npis <= 16);
  Graph.num_pis g2 = npis
  && Graph.num_pos g2 = Graph.num_pos g1
  &&
  let ok = ref true in
  for m = 0 to (1 lsl npis) - 1 do
    let inputs = bools_of_int m npis in
    if eval_naive g1 inputs <> eval_naive g2 inputs then ok := false
  done;
  !ok

(* Check a circuit against an integer-level specification on random rounds:
   [spec] maps PI bits to expected PO bits. *)
let check_spec ?(rounds = 256) ~seed g spec =
  let rng = Logic.Rng.create seed in
  let npis = Graph.num_pis g in
  let patterns = Sim.Patterns.random rng ~npis ~len:rounds in
  let pos = Sim.Engine.simulate_pos g patterns in
  for m = 0 to rounds - 1 do
    let inputs = Array.init npis (fun i -> Logic.Bitvec.get patterns.(i) m) in
    let expected = spec inputs in
    let actual = Array.init (Graph.num_pos g) (fun o -> Logic.Bitvec.get pos.(o) m) in
    if expected <> actual then
      Alcotest.failf "round %d: inputs %s expected %s got %s" m
        (String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list inputs)))
        (String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list expected)))
        (String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list actual)))
  done

let qcheck_cases tests = List.map QCheck_alcotest.to_alcotest tests
