module Graph = Aig.Graph
module Bitvec = Logic.Bitvec

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_exhaustive_patterns () =
  let pats = Sim.Patterns.exhaustive ~npis:3 in
  check_int "three signatures" 3 (Array.length pats);
  check_int "eight rounds" 8 (Bitvec.length pats.(0));
  for m = 0 to 7 do
    for i = 0 to 2 do
      check "bit i of round m = bit i of m" ((m lsr i) land 1 = 1) (Bitvec.get pats.(i) m)
    done
  done

let test_exhaustive_limit () =
  Alcotest.check_raises "too many PIs"
    (Invalid_argument "Patterns.exhaustive: too many PIs") (fun () ->
      ignore (Sim.Patterns.exhaustive ~npis:25))

let test_random_patterns_shape () =
  let rng = Logic.Rng.create 1 in
  let pats = Sim.Patterns.random rng ~npis:5 ~len:100 in
  check_int "five signatures" 5 (Array.length pats);
  Array.iter (fun p -> check_int "length" 100 (Bitvec.length p)) pats

let test_weighted_patterns () =
  let rng = Logic.Rng.create 2 in
  let pats = Sim.Patterns.weighted rng ~probs:[| 0.0; 1.0; 0.5 |] ~len:500 in
  check_int "p=0 gives zeros" 0 (Bitvec.popcount pats.(0));
  check_int "p=1 gives ones" 500 (Bitvec.popcount pats.(1));
  let ones = Bitvec.popcount pats.(2) in
  check "p=0.5 is balanced-ish" true (ones > 150 && ones < 350)

let prop_engine_matches_naive =
  QCheck.Test.make ~name:"engine matches naive evaluation" ~count:50
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:6 ~nands:50 in
      let pats = Sim.Patterns.exhaustive ~npis:6 in
      let pos = Sim.Engine.simulate_pos g pats in
      let ok = ref true in
      for m = 0 to 63 do
        let inputs = Util.bools_of_int m 6 in
        let expected = Util.eval_naive g inputs in
        Array.iteri
          (fun o e -> if Bitvec.get pos.(o) m <> e then ok := false)
          expected
      done;
      !ok)

let prop_resimulate_tfo =
  QCheck.Test.make ~name:"TFO resimulation equals full resimulation" ~count:50
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:5 ~nands:40 in
      if Graph.num_ands g = 0 then true
      else begin
        let pats = Sim.Patterns.exhaustive ~npis:5 in
        let base = Sim.Engine.simulate g pats in
        (* Pick an arbitrary AND node and a random replacement signature. *)
        let ands = ref [] in
        Graph.iter_ands g (fun id -> ands := id :: !ands);
        let arr = Array.of_list !ands in
        let node = arr.(Logic.Rng.int rng (Array.length arr)) in
        let value = Bitvec.random rng (Bitvec.length base.(0)) in
        let tfo = Aig.Cone.tfo_mask g node in
        let fast = Sim.Engine.resimulate_tfo g ~base ~tfo ~node ~value in
        (* Reference: recompute every node with the override applied. *)
        let n = Graph.num_nodes g in
        let sigs = Array.init n (fun i -> Bitvec.copy base.(i)) in
        sigs.(node) <- value;
        Graph.iter_ands g (fun id ->
            if id <> node then begin
              let f0 = Graph.fanin0 g id and f1 = Graph.fanin1 g id in
              let v0 = sigs.(Graph.node_of f0) and v1 = sigs.(Graph.node_of f1) in
              let v0 = if Graph.is_compl f0 then Bitvec.lognot v0 else v0 in
              let v1 = if Graph.is_compl f1 then Bitvec.lognot v1 else v1 in
              sigs.(id) <- Bitvec.logand v0 v1
            end);
        let slow =
          Array.init (Graph.num_pos g) (fun i ->
              let l = Graph.po_lit g i in
              let v = sigs.(Graph.node_of l) in
              if Graph.is_compl l then Bitvec.lognot v else v)
        in
        Array.for_all2 Bitvec.equal fast slow
      end)

let test_simulate_checks_arity () =
  let g = Graph.create () in
  ignore (Graph.add_pi g);
  Alcotest.check_raises "PI count"
    (Invalid_argument "Engine.simulate: one signature per PI required") (fun () ->
      ignore (Sim.Engine.simulate g [||]))

(* ---------- Fraig ---------- *)

let test_fraig_merges_functional_duplicates () =
  (* Two structurally different builds of xor: strash cannot merge them,
     fraig must. *)
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  let x1 = Aig.Builder.xor g a b in
  (* xor via or/and: (a|b) & !(a&b). *)
  let x2 = Graph.and_ g (Aig.Builder.or_ g a b) (Graph.lit_not (Graph.and_ g a b)) in
  ignore (Graph.add_po g x1);
  ignore (Graph.add_po g x2);
  let before = Graph.num_ands g in
  let merged = Sim.Fraig.run g in
  Alcotest.(check bool) "smaller" true (Graph.num_ands merged < before);
  Alcotest.(check bool) "equivalent" true (Util.equivalent g merged)

let test_fraig_merges_complement_pairs () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  let nand_ = Graph.lit_not (Graph.and_ g a b) in
  (* !a | !b built independently. *)
  let or_nots = Aig.Builder.or_ g (Graph.lit_not a) (Graph.lit_not b) in
  ignore (Graph.add_po g nand_);
  ignore (Graph.add_po g or_nots);
  let merged = Sim.Fraig.run g in
  Alcotest.(check bool) "equivalent" true (Util.equivalent g merged);
  Alcotest.(check int) "single AND" 1 (Graph.num_ands merged)

let prop_fraig_preserves_function =
  QCheck.Test.make ~name:"fraig preserves function" ~count:40
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:6 ~nands:50 in
      let merged = Sim.Fraig.run g in
      Aig.Check.check_exn merged;
      Graph.num_ands merged <= Graph.num_ands (Graph.compact g) + 0
      && Util.equivalent g merged)

let test_fraig_respects_support_bound () =
  (* Nodes with wide support are left alone even when equivalent. *)
  let g = Graph.create () in
  let lits = List.init 20 (fun _ -> Graph.add_pi g) in
  let big1 = Aig.Builder.and_list g lits in
  let big2 = Aig.Builder.and_list g (List.rev lits) in
  ignore (Graph.add_po g big1);
  ignore (Graph.add_po g big2);
  let merged = Sim.Fraig.run ~max_support:8 g in
  Aig.Check.check_exn merged;
  (* Candidates share signatures but exceed the support bound: no merge. *)
  Alcotest.(check int) "unchanged size" (Graph.num_ands (Graph.compact g))
    (Graph.num_ands merged)

let () =
  Alcotest.run "sim"
    [
      ( "patterns",
        [
          Alcotest.test_case "exhaustive" `Quick test_exhaustive_patterns;
          Alcotest.test_case "exhaustive limit" `Quick test_exhaustive_limit;
          Alcotest.test_case "random shape" `Quick test_random_patterns_shape;
          Alcotest.test_case "weighted" `Quick test_weighted_patterns;
        ] );
      ( "engine",
        [ Alcotest.test_case "arity check" `Quick test_simulate_checks_arity ]
        @ Util.qcheck_cases [ prop_engine_matches_naive; prop_resimulate_tfo ] );
      ( "fraig",
        [
          Alcotest.test_case "merges duplicates" `Quick test_fraig_merges_functional_duplicates;
          Alcotest.test_case "merges complements" `Quick test_fraig_merges_complement_pairs;
          Alcotest.test_case "support bound" `Quick test_fraig_respects_support_bound;
        ]
        @ Util.qcheck_cases [ prop_fraig_preserves_function ] );
    ]
