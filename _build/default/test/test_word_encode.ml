(* Word-level construction helpers and encoder blocks. *)

module Graph = Aig.Graph
module Word = Circuits.Word
module Encode = Circuits.Encode

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let eval_word g word inputs =
  (* Evaluate an array of literals under a PI assignment. *)
  let n = Graph.num_nodes g in
  let values = Array.make n None in
  let rec node id =
    match values.(id) with
    | Some v -> v
    | None ->
        let v =
          if Graph.is_const id then false
          else if Graph.is_pi g id then inputs.(Graph.pi_index g id)
          else
            let lit l = node (Graph.node_of l) <> Graph.is_compl l in
            lit (Graph.fanin0 g id) && lit (Graph.fanin1 g id)
        in
        values.(id) <- Some v;
        v
  in
  let v = ref 0 in
  Array.iteri
    (fun i l -> if node (Graph.node_of l) <> Graph.is_compl l then v := !v lor (1 lsl i))
    word;
  !v

let test_const_word () =
  let w = Word.const_word 0b1010 ~width:6 in
  check_int "bit1" Graph.const1 w.(1);
  check_int "bit0" Graph.const0 w.(0);
  check_int "bit4" Graph.const0 w.(4)

let test_subtract_negate () =
  let g = Graph.create () in
  let a = Word.input_word g "a" 6 in
  let b = Word.input_word g "b" 6 in
  let diff, _ = Word.subtract g a b in
  let neg = Word.negate g a in
  for trial = 0 to 200 do
    let x = (trial * 37) land 63 and y = (trial * 53) land 63 in
    let inputs = Array.append (Util.bools_of_int x 6) (Util.bools_of_int y 6) in
    check_int "a-b mod 64" ((x - y) land 63) (eval_word g diff inputs);
    check_int "-a mod 64" (-x land 63) (eval_word g neg inputs)
  done

let test_comparisons () =
  let g = Graph.create () in
  let a = Word.input_word g "a" 5 in
  let b = Word.input_word g "b" 5 in
  let eq = Word.equal g a b in
  let lt = Word.less_unsigned g a b in
  for x = 0 to 31 do
    for y = 0 to 31 do
      let inputs = Array.append (Util.bools_of_int x 5) (Util.bools_of_int y 5) in
      check "eq" ((x = y)) (eval_word g [| eq |] inputs = 1);
      check "lt" ((x < y)) (eval_word g [| lt |] inputs = 1)
    done
  done

let test_shifts () =
  let g = Graph.create () in
  let x = Word.input_word g "x" 8 in
  let amount = Word.input_word g "s" 3 in
  let left = Word.shift_left g x ~amount in
  let right = Word.shift_right g x ~amount in
  for trial = 0 to 300 do
    let v = (trial * 41) land 255 and s = trial land 7 in
    let inputs = Array.append (Util.bools_of_int v 8) (Util.bools_of_int s 3) in
    check_int "shl" ((v lsl s) land 255) (eval_word g left inputs);
    check_int "shr" (v lsr s) (eval_word g right inputs)
  done

let test_mux_word () =
  let g = Graph.create () in
  let a = Word.input_word g "a" 4 in
  let b = Word.input_word g "b" 4 in
  let sel = Graph.add_pi ~name:"sel" g in
  let m = Word.mux_word g ~sel ~t:a ~e:b in
  for trial = 0 to 100 do
    let x = trial land 15 and y = (trial lsr 4) land 15 in
    let s = trial land 1 = 1 in
    let inputs = Array.concat [ Util.bools_of_int x 4; Util.bools_of_int y 4; [| s |] ] in
    check_int "mux" (if s then x else y) (eval_word g m inputs)
  done

let test_parity_resize () =
  let g = Graph.create () in
  let x = Word.input_word g "x" 7 in
  let p = Word.parity g x in
  for v = 0 to 127 do
    let inputs = Util.bools_of_int v 7 in
    let expected =
      let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
      pop v mod 2 = 1
    in
    check "parity" expected (eval_word g [| p |] inputs = 1)
  done;
  let r = Word.resize x 10 in
  check_int "resize pads" 10 (Array.length r);
  check_int "pad is const0" Graph.const0 r.(9)

(* ---------- Encode ---------- *)

let test_bits_for () =
  check_int "1" 0 (Encode.bits_for 1);
  check_int "2" 1 (Encode.bits_for 2);
  check_int "3" 2 (Encode.bits_for 3);
  check_int "256" 8 (Encode.bits_for 256);
  check_int "257" 9 (Encode.bits_for 257)

let test_one_hot_first_last () =
  let g = Graph.create () in
  let x = Word.input_word g "x" 6 in
  let first = Encode.one_hot_first g x in
  let last = Encode.one_hot_last g x in
  for v = 0 to 63 do
    let inputs = Util.bools_of_int v 6 in
    let f = eval_word g first inputs and l = eval_word g last inputs in
    if v = 0 then begin
      check_int "first none" 0 f;
      check_int "last none" 0 l
    end
    else begin
      check_int "first = lowest bit" (v land -v) f;
      let rec high b = if b >= v land lnot (b - 1) && b land v <> 0 then b else high (b lsr 1) in
      ignore high;
      let rec highest i = if (v lsr i) land 1 = 1 then 1 lsl i else highest (i - 1) in
      check_int "last = highest bit" (highest 5) l
    end
  done

let test_binary_of_one_hot () =
  let g = Graph.create () in
  let x = Word.input_word g "x" 8 in
  let sel = Encode.one_hot_first g x in
  let idx = Encode.binary_of_one_hot g sel in
  for v = 1 to 255 do
    let inputs = Util.bools_of_int v 8 in
    let rec lowest i = if (v lsr i) land 1 = 1 then i else lowest (i + 1) in
    check_int "index of first" (lowest 0) (eval_word g idx inputs)
  done

let test_popcount_circuit () =
  let g = Graph.create () in
  let x = Word.input_word g "x" 9 in
  let count = Encode.popcount g x in
  for v = 0 to 511 do
    let inputs = Util.bools_of_int v 9 in
    let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
    check_int "popcount" (pop v) (eval_word g count inputs)
  done

let test_decode_one_hot () =
  let g = Graph.create () in
  let sel = Word.input_word g "s" 3 in
  let out = Encode.decode g sel in
  check_int "8 outputs" 8 (Array.length out);
  for v = 0 to 7 do
    let inputs = Util.bools_of_int v 3 in
    check_int "one hot" (1 lsl v) (eval_word g out inputs)
  done

(* ---------- New engine features ---------- *)

let test_worst_case_ed () =
  let golden = [| Logic.Bitvec.of_string "10"; Logic.Bitvec.of_string "01" |] in
  (* values 1, 2 *)
  let approx = [| Logic.Bitvec.of_string "00"; Logic.Bitvec.of_string "10" |] in
  (* values 2, 0 *)
  check_int "worst |d|" 2 (Errest.Metrics.worst_case_ed ~golden ~approx)

let prop_prepared_equals_measure =
  QCheck.Test.make ~name:"prepared measurement equals direct" ~count:50
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let len = 100 in
      let mk () = Array.init 5 (fun _ -> Logic.Bitvec.random rng len) in
      let golden = mk () and approx = mk () in
      List.for_all
        (fun kind ->
          let p = Errest.Metrics.prepare kind ~golden in
          Float.abs
            (Errest.Metrics.measure_prepared p ~approx
            -. Errest.Metrics.measure kind ~golden ~approx)
          < 1e-12)
        [ Errest.Metrics.Er; Errest.Metrics.Nmed; Errest.Metrics.Mred ])

let test_flow_with_input_distribution () =
  (* Skewed inputs: the flow respects the distribution (deterministic run,
     constraint honoured on its sample). *)
  let g = Circuits.Multipliers.wallace ~width:4 in
  let npis = Graph.num_pis g in
  let config =
    { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.02) with
      Core.Config.eval_rounds = 2048;
      max_iters = 60;
      input_probs = Some (Array.make npis 0.9);
    }
  in
  let approx, report = Core.Flow.run ~config g in
  check "constraint respected on sample" true
    (report.Core.Flow.final_est_error <= 0.02 +. 1e-9);
  check "interface preserved" true (Graph.num_pis approx = npis)

let () =
  Alcotest.run "word-encode"
    [
      ( "word",
        [
          Alcotest.test_case "const word" `Quick test_const_word;
          Alcotest.test_case "subtract/negate" `Quick test_subtract_negate;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "mux word" `Quick test_mux_word;
          Alcotest.test_case "parity/resize" `Quick test_parity_resize;
        ] );
      ( "encode",
        [
          Alcotest.test_case "bits_for" `Quick test_bits_for;
          Alcotest.test_case "one-hot first/last" `Quick test_one_hot_first_last;
          Alcotest.test_case "binary of one-hot" `Quick test_binary_of_one_hot;
          Alcotest.test_case "popcount" `Quick test_popcount_circuit;
          Alcotest.test_case "decode" `Quick test_decode_one_hot;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "worst-case ED" `Quick test_worst_case_ed;
          Alcotest.test_case "flow with input distribution" `Quick
            test_flow_with_input_distribution;
        ]
        @ Util.qcheck_cases [ prop_prepared_equals_measure ] );
    ]
