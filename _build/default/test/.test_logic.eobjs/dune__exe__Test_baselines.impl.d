test/test_baselines.ml: Aig Alcotest Baselines Circuits Errest Util
