test/test_errest.ml: Aig Alcotest Array Errest Float Gen List Logic QCheck Sim Util
