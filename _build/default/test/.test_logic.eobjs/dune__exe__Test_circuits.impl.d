test/test_circuits.ml: Aig Alcotest Array Circuits List Logic Sim Util
