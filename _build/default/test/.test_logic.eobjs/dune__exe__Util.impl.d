test/util.ml: Aig Alcotest Array List Logic QCheck_alcotest Sim String
