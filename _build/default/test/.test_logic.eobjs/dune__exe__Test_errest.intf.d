test/test_errest.mli:
