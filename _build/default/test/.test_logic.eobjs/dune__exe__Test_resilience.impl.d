test/test_resilience.ml: Aig Alcotest Circuits Core Errest Filename Lazy List Util
