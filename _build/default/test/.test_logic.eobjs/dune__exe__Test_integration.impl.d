test/test_integration.ml: Aig Alcotest Array Baselines Circuit_io Circuits Core Errest Logic Sim String Techmap Util
