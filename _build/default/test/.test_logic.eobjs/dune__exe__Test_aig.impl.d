test/test_aig.ml: Aig Alcotest Array Gen List Logic QCheck Util
