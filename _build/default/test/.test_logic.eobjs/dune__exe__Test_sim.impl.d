test/test_sim.ml: Aig Alcotest Array Gen List Logic QCheck Sim Util
