test/test_core_alsrac.ml: Aig Alcotest Array Circuits Core Errest Hashtbl List Logic Option Sim Util
