test/test_techmap.ml: Aig Alcotest Array Circuit_io Circuits Gen List Logic QCheck Sim Techmap Util
