test/test_word_encode.ml: Aig Alcotest Array Circuits Core Errest Float Gen List Logic QCheck Util
