test/test_io.ml: Aig Alcotest Array Circuit_io Filename Fun Gen Logic QCheck String Sys Techmap Util
