test/test_io.ml: Aig Alcotest Array Circuit_io Filename Fun Gen List Logic Printexc QCheck String Sys Techmap Util
