test/test_word_encode.mli:
