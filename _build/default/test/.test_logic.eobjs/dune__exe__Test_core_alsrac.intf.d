test/test_core_alsrac.mli:
