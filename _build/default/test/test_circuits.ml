module Graph = Aig.Graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let word_value inputs ~base ~width =
  let v = ref 0 in
  for i = 0 to width - 1 do
    if inputs.(base + i) then v := !v lor (1 lsl i)
  done;
  !v

let bools v width = Array.init width (fun i -> (v lsr i) land 1 = 1)

(* ---------- Adders (a[w], b[w], cin -> s[w], cout) ---------- *)

let adder_spec width inputs =
  let a = word_value inputs ~base:0 ~width in
  let b = word_value inputs ~base:width ~width in
  let cin = if inputs.(2 * width) then 1 else 0 in
  let total = a + b + cin in
  Array.append (bools total width) [| total lsr width land 1 = 1 |]

let test_adder build width () =
  let g = build ~width in
  check_int "pis" ((2 * width) + 1) (Graph.num_pis g);
  check_int "pos" (width + 1) (Graph.num_pos g);
  Util.check_spec ~rounds:500 ~seed:101 g (adder_spec width)

(* ---------- Multipliers (a[w], b[w] -> p[2w]) ---------- *)

let mult_spec width inputs =
  let a = word_value inputs ~base:0 ~width in
  let b = word_value inputs ~base:width ~width in
  bools (a * b) (2 * width)

let test_mult build width () =
  let g = build ~width in
  check_int "pos" (2 * width) (Graph.num_pos g);
  Util.check_spec ~rounds:500 ~seed:103 g (mult_spec width)

let test_square width () =
  let g = Circuits.Multipliers.square ~width in
  Util.check_spec ~rounds:300 ~seed:107 g (fun inputs ->
      let a = word_value inputs ~base:0 ~width in
      bools (a * a) (2 * width))

(* ---------- ALU ---------- *)

let alu_spec width inputs =
  let a = word_value inputs ~base:0 ~width in
  let b = word_value inputs ~base:width ~width in
  let op = word_value inputs ~base:(2 * width) ~width:3 in
  let mode = inputs.((2 * width) + 3) in
  let cin = inputs.((2 * width) + 4) in
  let en = inputs.((2 * width) + 5) in
  let mask = (1 lsl width) - 1 in
  let f, cout =
    match op with
    | 0 ->
        let t = a + b + if cin then 1 else 0 in
        (t land mask, (t lsr width) land 1 = 1)
    | 1 ->
        let t = a - b in
        (t land mask, a >= b)
    | 2 -> (a land b, false)
    | 3 -> (a lor b, false)
    | 4 -> (a lxor b, false)
    | 5 -> (lnot (a lor b) land mask, false)
    | 6 -> (((a lsl 1) lor if cin then 1 else 0) land mask, false)
    | _ -> (a, false)
  in
  let f = if mode then lnot f land mask else f in
  let f = if en then f else 0 in
  let cout = cout && en in
  let zero = f = 0 in
  let parity =
    let rec pop v = if v = 0 then 0 else (v land 1) + pop (v lsr 1) in
    pop f mod 2 = 1
  in
  Array.concat [ bools f width; [| cout; zero; parity |] ]

let test_alu width () =
  let g = Circuits.Alu.alu ~width () in
  Util.check_spec ~rounds:600 ~seed:109 g (alu_spec width)

(* ---------- EPFL arithmetic cores ---------- *)

let test_divisor () =
  let width = 8 in
  let g = Graph.create () in
  let n = Circuits.Word.input_word g "n" width in
  let d = Circuits.Word.input_word g "d" width in
  let q, r = Circuits.Epfl_arith.divide_core g n d in
  Circuits.Word.output_word g "q" q;
  Circuits.Word.output_word g "r" r;
  Util.check_spec ~rounds:500 ~seed:113 g (fun inputs ->
      let n = word_value inputs ~base:0 ~width in
      let d = word_value inputs ~base:width ~width in
      if d = 0 then Array.append (bools ((1 lsl width) - 1) width) (bools n width)
      else Array.append (bools (n / d) width) (bools (n mod d) width))

let test_isqrt () =
  let width = 16 in
  let g = Graph.create () in
  let x = Circuits.Word.input_word g "x" width in
  let root, _ = Circuits.Epfl_arith.isqrt_core g x in
  Circuits.Word.output_word g "rt" root;
  Util.check_spec ~rounds:500 ~seed:127 g (fun inputs ->
      let x = word_value inputs ~base:0 ~width in
      let r = int_of_float (sqrt (float_of_int x)) in
      (* Guard against float rounding at perfect squares. *)
      let r = if (r + 1) * (r + 1) <= x then r + 1 else if r * r > x then r - 1 else r in
      bools r (width / 2))

let test_shifter () =
  let g = Circuits.Epfl_arith.shifter ~width:16 () in
  Util.check_spec ~rounds:400 ~seed:131 g (fun inputs ->
      let x = word_value inputs ~base:0 ~width:16 in
      let sh = word_value inputs ~base:16 ~width:4 in
      bools (x lsr sh) 16)

let test_max () =
  let g = Circuits.Epfl_arith.max_ ~width:8 () in
  Util.check_spec ~rounds:400 ~seed:137 g (fun inputs ->
      let ops = Array.init 4 (fun i -> word_value inputs ~base:(8 * i) ~width:8) in
      let m01, w01 = if ops.(1) > ops.(0) then (ops.(1), false) else (ops.(0), true) in
      let m23, w23 = if ops.(3) > ops.(2) then (ops.(3), false) else (ops.(2), true) in
      let m, first = if m23 > m01 then (m23, false) else (m01, true) in
      let i0 = if first then not w01 else not w23 in
      Array.concat [ bools m 8; [| i0; not first |] ])

let test_log2 () =
  let g = Circuits.Epfl_arith.log2 ~width:16 () in
  Util.check_spec ~rounds:400 ~seed:139 g (fun inputs ->
      let x = word_value inputs ~base:0 ~width:16 in
      if x = 0 then Array.make 13 false
      else begin
        let ilog = int_of_float (floor (log (float_of_int x) /. log 2.0)) in
        let ilog = if 1 lsl (ilog + 1) <= x then ilog + 1 else if 1 lsl ilog > x then ilog - 1 else ilog in
        let frac =
          Array.init 8 (fun k ->
              let off = k + 1 in
              ilog - off >= 0 && (x lsr (ilog - off)) land 1 = 1)
        in
        Array.concat
          [ bools ilog 4; Array.init 8 (fun i -> frac.(7 - i)); [| true |] ]
      end)

(* ---------- EPFL control ---------- *)

let test_dec () =
  let g = Circuits.Epfl_control.dec ~bits:4 () in
  Util.check_spec ~rounds:200 ~seed:149 g (fun inputs ->
      let v = word_value inputs ~base:0 ~width:4 in
      Array.init 16 (fun i -> i = v))

let test_priority () =
  let g = Circuits.Epfl_control.priority ~n:16 () in
  Util.check_spec ~rounds:400 ~seed:151 g (fun inputs ->
      let rec first i = if i >= 16 then None else if inputs.(i) then Some i else first (i + 1) in
      match first 0 with
      | None -> Array.make 5 false
      | Some i -> Array.append (bools i 4) [| true |])

let test_voter () =
  let n = 15 in
  let g = Circuits.Epfl_control.voter ~n () in
  Util.check_spec ~rounds:400 ~seed:157 g (fun inputs ->
      let ones = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 inputs in
      [| ones > n / 2 |])

let test_arbiter () =
  let n = 8 in
  let g = Circuits.Epfl_control.arbiter ~n () in
  Util.check_spec ~rounds:400 ~seed:163 g (fun inputs ->
      let req = Array.sub inputs 0 n in
      let ptr = word_value inputs ~base:n ~width:3 in
      let grant = Array.make n false in
      (let rec scan k =
         if k < n then begin
           let i = (ptr + k) mod n in
           if req.(i) then grant.(i) <- true else scan (k + 1)
         end
       in
       scan 0);
      grant)

let test_int2float () =
  let g = Circuits.Epfl_control.int2float () in
  Util.check_spec ~rounds:500 ~seed:167 g (fun inputs ->
      let raw = word_value inputs ~base:0 ~width:11 in
      let sign = inputs.(10) in
      let mag = if sign then -(raw - 2048) land 2047 else raw in
      let mag = mag land 1023 in
      if mag = 0 then Array.append [| sign |] (Array.make 6 false)
      else begin
        let e = int_of_float (floor (log (float_of_int mag) /. log 2.0)) in
        let e = if 1 lsl (e + 1) <= mag then e + 1 else if 1 lsl e > mag then e - 1 else e in
        let bit off = e - off >= 0 && (mag lsr (e - off)) land 1 = 1 in
        Array.concat [ [| sign |]; bools e 4; [| bit 1; bit 2 |] ]
      end)

(* ---------- Hamming SEC ---------- *)

let test_c1908_corrects_single_errors () =
  let g = Circuits.Iscas_like.c1908_like () in
  (* Build a valid codeword for data=0: all zeros.  Flip one bit and check
     that the corrected data equals zero again. *)
  for flip = 0 to 20 do
    let inputs = Array.make 21 false in
    inputs.(flip) <- true;
    let out = Util.eval_naive g inputs in
    (* First 16 outputs: corrected data. *)
    let data = Array.sub out 0 16 in
    check ("flip " ^ string_of_int flip) true (Array.for_all not data);
    check "error flagged" true out.(21)
  done;
  (* No error: clean zeros, error flag low. *)
  let out = Util.eval_naive g (Array.make 21 false) in
  check "no error flag" false out.(21)

(* ---------- DSP ---------- *)

let test_fir3 () =
  let g = Circuits.Dsp.fir3 ~width:6 ~taps:(1, 2, 1) () in
  Util.check_spec ~rounds:400 ~seed:171 g (fun inputs ->
      let x i = word_value inputs ~base:(6 * i) ~width:6 in
      let y = x 0 + (2 * x 1) + x 2 in
      bools y (Graph.num_pos g))

let test_gaussian3x3 () =
  let g = Circuits.Dsp.gaussian3x3 ~width:6 () in
  Util.check_spec ~rounds:400 ~seed:173 g (fun inputs ->
      let p i = word_value inputs ~base:(6 * i) ~width:6 in
      let weights = [| 1; 2; 1; 2; 4; 2; 1; 2; 1 |] in
      let sum = ref 0 in
      Array.iteri (fun i w -> sum := !sum + (w * p i)) weights;
      bools (!sum / 16) 6)

let test_sobel3x3 () =
  let g = Circuits.Dsp.sobel3x3 ~width:5 () in
  Util.check_spec ~rounds:400 ~seed:179 g (fun inputs ->
      let p i = word_value inputs ~base:(5 * i) ~width:5 in
      let gx = abs ((p 2 + (2 * p 5) + p 8) - (p 0 + (2 * p 3) + p 6)) in
      let gy = abs ((p 6 + (2 * p 7) + p 8) - (p 0 + (2 * p 1) + p 2)) in
      bools ((gx + gy) land 127) 7)

let test_mac () =
  let g = Circuits.Dsp.mac ~width:5 () in
  Util.check_spec ~rounds:400 ~seed:181 g (fun inputs ->
      let a = word_value inputs ~base:0 ~width:5 in
      let b = word_value inputs ~base:5 ~width:5 in
      let acc = word_value inputs ~base:10 ~width:10 in
      bools ((a * b) + acc) 11)

let test_constant_mult () =
  let g = Graph.create () in
  let x = Circuits.Word.input_word g "x" 6 in
  let y = Circuits.Dsp.constant_mult g x 13 in
  Circuits.Word.output_word g "y" y;
  Util.check_spec ~rounds:200 ~seed:191 g (fun inputs ->
      let v = word_value inputs ~base:0 ~width:6 in
      bools (13 * v) (Array.length y))

let test_median3x3 () =
  let g = Circuits.Dsp.median3x3 ~width:4 () in
  Util.check_spec ~rounds:500 ~seed:193 g (fun inputs ->
      let pixels = List.init 9 (fun i -> word_value inputs ~base:(4 * i) ~width:4) in
      let sorted = List.sort compare pixels in
      bools (List.nth sorted 4) 4)

let test_alu4_pla_equivalent () =
  (* The flat PLA form must compute exactly the behavioral ALU function. *)
  let beh = Circuits.Alu.alu4 () in
  let pla = Circuits.Alu.alu4_pla () in
  let rng = Logic.Rng.create 31 in
  let pats = Sim.Patterns.random rng ~npis:(Graph.num_pis beh) ~len:2048 in
  let a = Sim.Engine.simulate_pos beh pats in
  let b = Sim.Engine.simulate_pos pla pats in
  check "pla equals behavioral" true (Array.for_all2 Logic.Bitvec.equal a b);
  check "pla is flat" true (Aig.Topo.depth pla < Aig.Topo.depth beh + 5);
  check "pla is big" true (Graph.num_ands pla > 2000)

(* ---------- Suite ---------- *)

let test_suite_builds () =
  List.iter
    (fun (e : Circuits.Suite.entry) ->
      let g = e.Circuits.Suite.build () in
      Aig.Check.check_exn g;
      check (e.Circuits.Suite.name ^ " nonempty") true (Graph.num_ands g > 0);
      check
        (e.Circuits.Suite.name ^ " has POs")
        true
        (Graph.num_pos g > 0))
    Circuits.Suite.all

let test_suite_unique_names () =
  let names = List.map (fun (e : Circuits.Suite.entry) -> e.Circuits.Suite.name)
      Circuits.Suite.all in
  check_int "no duplicates" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_suite_finds () =
  check "rca32 present" true (Circuits.Suite.find "rca32" <> None);
  check "unknown absent" true (Circuits.Suite.find "nope" = None);
  check_int "iscas group size" 12
    (List.length (Circuits.Suite.of_klass Circuits.Suite.Iscas_arith));
  check_int "epfl control group size" 10
    (List.length (Circuits.Suite.of_klass Circuits.Suite.Epfl_control));
  check_int "epfl arith group size" 10
    (List.length (Circuits.Suite.of_klass Circuits.Suite.Epfl_arith))

let () =
  Alcotest.run "circuits"
    [
      ( "adders",
        [
          Alcotest.test_case "rca8" `Quick (test_adder (fun ~width -> Circuits.Adders.ripple_carry ~width) 8);
          Alcotest.test_case "cla8" `Quick (test_adder (fun ~width -> Circuits.Adders.carry_lookahead ~width) 8);
          Alcotest.test_case "ksa8" `Quick (test_adder (fun ~width -> Circuits.Adders.kogge_stone ~width) 8);
          Alcotest.test_case "rca32" `Quick (test_adder (fun ~width -> Circuits.Adders.ripple_carry ~width) 32);
          Alcotest.test_case "cla32" `Quick (test_adder (fun ~width -> Circuits.Adders.carry_lookahead ~width) 32);
          Alcotest.test_case "ksa32" `Quick (test_adder (fun ~width -> Circuits.Adders.kogge_stone ~width) 32);
        ] );
      ( "multipliers",
        [
          Alcotest.test_case "mtp4" `Quick (test_mult (fun ~width -> Circuits.Multipliers.array_mult ~width) 4);
          Alcotest.test_case "mtp8" `Quick (test_mult (fun ~width -> Circuits.Multipliers.array_mult ~width) 8);
          Alcotest.test_case "wal8" `Quick (test_mult (fun ~width -> Circuits.Multipliers.wallace ~width) 8);
          Alcotest.test_case "square8" `Quick (test_square 8);
        ] );
      ( "alu",
        [
          Alcotest.test_case "alu4" `Quick (test_alu 4);
          Alcotest.test_case "alu8" `Quick (test_alu 8);
        ] );
      ( "epfl-arith",
        [
          Alcotest.test_case "divider" `Quick test_divisor;
          Alcotest.test_case "isqrt" `Quick test_isqrt;
          Alcotest.test_case "shifter" `Quick test_shifter;
          Alcotest.test_case "max" `Quick test_max;
          Alcotest.test_case "log2" `Quick test_log2;
        ] );
      ( "epfl-control",
        [
          Alcotest.test_case "decoder" `Quick test_dec;
          Alcotest.test_case "priority" `Quick test_priority;
          Alcotest.test_case "voter" `Quick test_voter;
          Alcotest.test_case "arbiter" `Quick test_arbiter;
          Alcotest.test_case "int2float" `Quick test_int2float;
        ] );
      ( "hamming", [ Alcotest.test_case "SEC" `Quick test_c1908_corrects_single_errors ] );
      ( "alu4-pla", [ Alcotest.test_case "equivalence" `Quick test_alu4_pla_equivalent ] );
      ( "dsp",
        [
          Alcotest.test_case "fir3" `Quick test_fir3;
          Alcotest.test_case "gaussian3x3" `Quick test_gaussian3x3;
          Alcotest.test_case "sobel3x3" `Quick test_sobel3x3;
          Alcotest.test_case "mac" `Quick test_mac;
          Alcotest.test_case "constant mult" `Quick test_constant_mult;
          Alcotest.test_case "median3x3" `Quick test_median3x3;
        ] );
      ( "suite",
        [
          Alcotest.test_case "all build" `Quick test_suite_builds;
          Alcotest.test_case "lookup" `Quick test_suite_finds;
          Alcotest.test_case "unique names" `Quick test_suite_unique_names;
        ] );
    ]
