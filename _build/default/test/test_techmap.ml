module Graph = Aig.Graph
module Mapped = Techmap.Mapped

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Mapped netlist and source AIG must agree on every PO for every pattern. *)
let mapped_equivalent g (m : Mapped.t) ~npis =
  let pats = Sim.Patterns.exhaustive ~npis in
  let aig_pos = Sim.Engine.simulate_pos g pats in
  let map_pos = Mapped.simulate m pats in
  Array.length aig_pos = Array.length map_pos
  && Array.for_all2 Logic.Bitvec.equal aig_pos map_pos

(* ---------- Library ---------- *)

let test_library_inverter () =
  let inv = Techmap.Library.inverter Techmap.Library.mcnc in
  Alcotest.(check string) "name" "inv" inv.Techmap.Library.name

let test_library_lookup () =
  check "finds nand2" true (Techmap.Library.find Techmap.Library.mcnc "nand2" <> None);
  check "rejects unknown" true (Techmap.Library.find Techmap.Library.mcnc "nand9" = None)

let test_library_gate_functions () =
  (* Spot-check three gate truth tables. *)
  let gate_tt name =
    match Techmap.Library.find Techmap.Library.mcnc name with
    | Some g -> g.Techmap.Library.tt
    | None -> Alcotest.fail ("missing gate " ^ name)
  in
  let open Logic.Truth in
  check "nand2" true (equal (gate_tt "nand2") (bnot (band (var 2 0) (var 2 1))));
  check "xor2" true (equal (gate_tt "xor2") (bxor (var 2 0) (var 2 1)));
  check "aoi21" true
    (equal (gate_tt "aoi21") (bnot (bor (band (var 3 0) (var 3 1)) (var 3 2))))

(* ---------- LUT mapping ---------- *)

let prop_lutmap_equivalent =
  QCheck.Test.make ~name:"lutmap preserves function" ~count:30
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:6 ~nands:60 in
      let m = Techmap.Lutmap.run g in
      (match Mapped.validate m with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invalid netlist: %s" e);
      mapped_equivalent g m ~npis:6)

let test_lutmap_cut_width () =
  let rng = Logic.Rng.create 3 in
  let g = Util.random_graph rng ~npis:8 ~nands:100 in
  let m = Techmap.Lutmap.run ~k:4 g in
  Array.iter
    (fun (c : Mapped.cell) -> check "lut width <= 4" true (Array.length c.Mapped.fanins <= 4))
    m.Mapped.cells

let test_lutmap_depth_vs_aig () =
  (* LUT depth can never exceed AIG depth. *)
  let g = Circuits.Adders.ripple_carry ~width:8 in
  let m = Techmap.Lutmap.run ~k:6 g in
  check "depth reduced" true (Mapped.depth m <= Aig.Topo.depth g);
  check "luts fewer than ands" true (Mapped.num_cells m <= Graph.num_ands g)

let test_lutmap_adder_exact () =
  let g = Circuits.Adders.ripple_carry ~width:7 in
  let m = Techmap.Lutmap.run g in
  check "adder mapping equivalent" true (mapped_equivalent g m ~npis:15)

let test_lutmap_constant_po () =
  let g = Graph.create () in
  ignore (Graph.add_pi g);
  ignore (Graph.add_po g Graph.const1);
  ignore (Graph.add_po g Graph.const0);
  let m = Techmap.Lutmap.run g in
  check_int "no cells for constants" 0 (Mapped.num_cells m);
  check "const sources" true
    (m.Mapped.pos = [| Mapped.Const true; Mapped.Const false |])

let test_lutmap_inverted_po () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  let x = Graph.and_ g a b in
  ignore (Graph.add_po g x);
  ignore (Graph.add_po g (Graph.lit_not x));
  let m = Techmap.Lutmap.run g in
  check "still equivalent" true (mapped_equivalent g m ~npis:2)

(* ---------- Cell mapping ---------- *)

let prop_cellmap_equivalent =
  QCheck.Test.make ~name:"cellmap preserves function" ~count:30
    QCheck.(make Gen.(int_range 0 100000))
    (fun seed ->
      let rng = Logic.Rng.create seed in
      let g = Util.random_graph rng ~npis:6 ~nands:60 in
      let m = Techmap.Cellmap.run g in
      (match Mapped.validate m with
      | Ok () -> ()
      | Error e -> QCheck.Test.fail_reportf "invalid netlist: %s" e);
      mapped_equivalent g m ~npis:6)

let test_cellmap_uses_library_gates () =
  let g = Circuits.Multipliers.wallace ~width:4 in
  let m = Techmap.Cellmap.run g in
  Array.iter
    (fun (c : Mapped.cell) ->
      check ("known gate " ^ c.Mapped.label) true
        (Techmap.Library.find Techmap.Library.mcnc c.Mapped.label <> None))
    m.Mapped.cells;
  check "positive area" true (Mapped.area m > 0.0);
  check "positive delay" true (Mapped.delay m > 0.0)

let test_cellmap_xor_uses_xor_gate () =
  let g = Graph.create () in
  let a = Graph.add_pi g and b = Graph.add_pi g in
  ignore (Graph.add_po g (Aig.Builder.xor g a b));
  let m = Techmap.Cellmap.run g in
  check "single cell" true (Mapped.num_cells m = 1);
  let labels = Array.map (fun (c : Mapped.cell) -> c.Mapped.label) m.Mapped.cells in
  check "xor2 chosen" true (labels = [| "xor2" |])

let test_cellmap_adder_exact () =
  let g = Circuits.Adders.carry_lookahead ~width:7 in
  let m = Techmap.Cellmap.run g in
  check "cla mapping equivalent" true (mapped_equivalent g m ~npis:15)

let test_cellmap_suite_sample () =
  (* A couple of real benchmark circuits, verified on random rounds. *)
  List.iter
    (fun name ->
      match Circuits.Suite.find name with
      | None -> Alcotest.fail ("missing " ^ name)
      | Some e ->
          let g = e.Circuits.Suite.build () in
          let m = Techmap.Cellmap.run g in
          let rng = Logic.Rng.create 9 in
          let pats = Sim.Patterns.random rng ~npis:(Graph.num_pis g) ~len:512 in
          let a = Sim.Engine.simulate_pos g pats in
          let b = Mapped.simulate m pats in
          check (name ^ " equivalent") true (Array.for_all2 Logic.Bitvec.equal a b))
    [ "alu4"; "mtp8" ]

let test_library_wellformed () =
  List.iter
    (fun (g : Techmap.Library.gate) ->
      check ("area>0 " ^ g.Techmap.Library.name) true (g.Techmap.Library.area > 0.0);
      check ("delay>0 " ^ g.Techmap.Library.name) true (g.Techmap.Library.delay > 0.0);
      check_int ("arity " ^ g.Techmap.Library.name) g.Techmap.Library.ninputs
        (Logic.Truth.num_vars g.Techmap.Library.tt);
      (* Full support: no gate may ignore a pin. *)
      check ("full support " ^ g.Techmap.Library.name) true
        (List.length (Logic.Truth.support g.Techmap.Library.tt)
        = g.Techmap.Library.ninputs))
    Techmap.Library.mcnc.Techmap.Library.gates

let test_lutmap_small_k () =
  let g = Circuits.Multipliers.wallace ~width:4 in
  let m = Techmap.Lutmap.run ~k:3 g in
  Array.iter
    (fun (c : Mapped.cell) -> check "width <= 3" true (Array.length c.Mapped.fanins <= 3))
    m.Mapped.cells;
  let pats = Sim.Patterns.exhaustive ~npis:8 in
  let a = Sim.Engine.simulate_pos g pats in
  let b = Mapped.simulate m pats in
  check "k=3 equivalent" true (Array.for_all2 Logic.Bitvec.equal a b)

let test_cellmap_blif_roundtrip () =
  let g = Circuits.Adders.kogge_stone ~width:5 in
  let m = Techmap.Cellmap.run g in
  let back = Circuit_io.Blif.parse (Circuit_io.Blif.mapped_to_string m) in
  check "cellmap blif equivalent" true (Util.equivalent g back)

let () =
  Alcotest.run "techmap"
    [
      ( "library",
        [
          Alcotest.test_case "inverter" `Quick test_library_inverter;
          Alcotest.test_case "lookup" `Quick test_library_lookup;
          Alcotest.test_case "gate functions" `Quick test_library_gate_functions;
        ] );
      ( "lutmap",
        [
          Alcotest.test_case "cut width" `Quick test_lutmap_cut_width;
          Alcotest.test_case "depth bound" `Quick test_lutmap_depth_vs_aig;
          Alcotest.test_case "adder exact" `Quick test_lutmap_adder_exact;
          Alcotest.test_case "constant po" `Quick test_lutmap_constant_po;
          Alcotest.test_case "inverted po" `Quick test_lutmap_inverted_po;
        ]
        @ Util.qcheck_cases [ prop_lutmap_equivalent ] );
      ( "cellmap",
        [
          Alcotest.test_case "library wellformed" `Quick test_library_wellformed;
          Alcotest.test_case "lutmap k=3" `Quick test_lutmap_small_k;
          Alcotest.test_case "cellmap blif roundtrip" `Quick test_cellmap_blif_roundtrip;
          Alcotest.test_case "library gates only" `Quick test_cellmap_uses_library_gates;
          Alcotest.test_case "xor gate" `Quick test_cellmap_xor_uses_xor_gate;
          Alcotest.test_case "adder exact" `Quick test_cellmap_adder_exact;
          Alcotest.test_case "suite sample" `Quick test_cellmap_suite_sample;
        ]
        @ Util.qcheck_cases [ prop_cellmap_equivalent ] );
    ]
