examples/quickstart.ml: Aig Array Bool Core Errest Format List Logic Printf Sim
