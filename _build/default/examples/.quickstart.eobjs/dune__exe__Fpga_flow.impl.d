examples/fpga_flow.ml: Aig Circuit_io Circuits Core Errest Filename List Printf Techmap
