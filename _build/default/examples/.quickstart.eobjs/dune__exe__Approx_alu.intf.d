examples/approx_alu.mli:
