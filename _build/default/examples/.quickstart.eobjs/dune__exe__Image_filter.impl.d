examples/image_filter.ml: Aig Array Circuits Core Errest List Logic Printf Sim Techmap
