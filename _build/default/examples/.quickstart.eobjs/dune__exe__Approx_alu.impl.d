examples/approx_alu.ml: Aig Baselines Circuits Core Errest Format Printf Techmap
