examples/approx_adder.ml: Aig Circuits Core Errest Format List Printf Techmap
