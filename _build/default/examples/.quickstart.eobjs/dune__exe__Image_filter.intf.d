examples/image_filter.mli:
