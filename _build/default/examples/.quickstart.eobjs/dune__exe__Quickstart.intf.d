examples/quickstart.mli:
