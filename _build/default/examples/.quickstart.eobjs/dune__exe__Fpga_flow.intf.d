examples/fpga_flow.mli:
