examples/approx_adder.mli:
