(* Application-level case study: approximate a 3x3 Gaussian image-smoothing
   kernel (the error-resilient workload class the paper's introduction
   motivates) and measure what the circuit-level NMED constraint means in
   application terms (PSNR against the exact filter's output).

   Run with: dune exec examples/image_filter.exe *)

module Graph = Aig.Graph
module Bitvec = Logic.Bitvec
module Metrics = Errest.Metrics

let image_size = 48

(* Synthetic 8-bit test image: smooth gradients plus seeded noise. *)
let make_image () =
  let rng = Logic.Rng.create 2026 in
  Array.init image_size (fun y ->
      Array.init image_size (fun x ->
          let base = (x * 3) + (y * 2) in
          let wave =
            int_of_float (40.0 *. sin (float_of_int x /. 5.0) *. cos (float_of_int y /. 7.0))
          in
          let noise = Logic.Rng.int rng 24 in
          max 0 (min 255 (base + wave + noise + 40))))

(* Apply a 9-pixel kernel circuit to every interior pixel, word-parallel:
   one simulation round per pixel position. *)
let apply_kernel circuit image =
  let interior = image_size - 2 in
  let rounds = interior * interior in
  let npis = Graph.num_pis circuit in
  assert (npis = 72);
  let pats = Array.init npis (fun _ -> Bitvec.create rounds) in
  let round = ref 0 in
  for y = 1 to image_size - 2 do
    for x = 1 to image_size - 2 do
      for ky = 0 to 2 do
        for kx = 0 to 2 do
          let pixel = image.(y + ky - 1).(x + kx - 1) in
          let base = ((ky * 3) + kx) * 8 in
          for b = 0 to 7 do
            Bitvec.set pats.(base + b) !round ((pixel lsr b) land 1 = 1)
          done
        done
      done;
      incr round
    done
  done;
  let pos = Sim.Engine.simulate_pos circuit pats in
  let values = Metrics.output_values pos in
  Array.init interior (fun y -> Array.init interior (fun x -> values.((y * interior) + x)))

let psnr exact approx =
  let se = ref 0.0 and n = ref 0 in
  Array.iteri
    (fun y row ->
      Array.iteri
        (fun x v ->
          let d = float_of_int (v - approx.(y).(x)) in
          se := !se +. (d *. d);
          incr n)
        row;
      ignore y)
    exact;
  let mse = !se /. float_of_int !n in
  if mse = 0.0 then infinity else 10.0 *. log10 (255.0 *. 255.0 /. mse)

let () =
  let kernel = Circuits.Dsp.gaussian3x3 ~width:8 () in
  let original = Graph.compact kernel in
  let image = make_image () in
  let exact_out = apply_kernel original image in
  Printf.printf "3x3 Gaussian kernel: %d AND gates (72 PIs, 8 POs)\n\n"
    (Graph.num_ands original);
  Printf.printf "%-10s %-12s %-12s %-12s %-10s\n" "NMED<=" "ands" "cell-area" "PSNR(dB)"
    "certified";
  List.iter
    (fun threshold ->
      let config =
        { (Core.Config.default ~metric:Metrics.Nmed ~threshold) with
          Core.Config.eval_rounds = 4096; seed = 1; max_seconds = 120.0 }
      in
      let approx, report = Core.Flow.run ~config kernel in
      let approx_out = apply_kernel approx image in
      let m0 = Techmap.Cellmap.run original and m1 = Techmap.Cellmap.run approx in
      (* Certify the sampled NMED with a Hoeffding bound at 95% confidence
         (NMED is a mean of [0,1]-valued per-round errors). *)
      let certified =
        Errest.Certify.upper_bound ~sampled:report.Core.Flow.final_est_error
          ~samples:config.Core.Config.eval_rounds ~confidence:0.95
      in
      Printf.printf "%-10.4f %4d->%-6d %5.1f%%      %6.2f       <=%.4f\n%!"
        threshold report.Core.Flow.input_ands report.Core.Flow.output_ands
        (100.0 *. Techmap.Mapped.area m1 /. Techmap.Mapped.area m0)
        (psnr exact_out approx_out)
        certified)
    [ 0.0005; 0.002; 0.01; 0.03 ];
  Printf.printf
    "\nHigher NMED budgets buy smaller circuits at the cost of application\n\
     quality; the PSNR column is the application-level view of the same\n\
     approximation (the paper's motivating tradeoff).\n"
