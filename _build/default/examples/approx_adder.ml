(* Approximate a 32-bit ripple-carry adder under an NMED constraint and map
   it to standard cells — one row of the paper's Table V experiment.

   Run with: dune exec examples/approx_adder.exe *)

module Graph = Aig.Graph
module Metrics = Errest.Metrics

let () =
  let g = Circuits.Adders.ripple_carry ~width:32 in
  Printf.printf "original rca32: %s\n" (Format.asprintf "%a" Graph.pp_stats g);
  let thresholds = [ 0.0001; 0.001; 0.01 ] in
  List.iter
    (fun threshold ->
      let config =
        { (Core.Config.default ~metric:Metrics.Nmed ~threshold) with
          Core.Config.eval_rounds = 4096; seed = 1; max_seconds = 120.0 }
      in
      let approx, report = Core.Flow.run ~config g in
      let exact = Metrics.evaluate Metrics.Nmed ~original:g ~approx in
      let m0 = Techmap.Cellmap.run (Graph.compact g) in
      let m1 = Techmap.Cellmap.run approx in
      Printf.printf
        "NMED <= %-8.4f%%: ands %4d -> %4d, %3d LACs, measured NMED %.5f%%, \
         cell area ratio %.1f%%, delay ratio %.1f%% (%.1fs)\n"
        (100.0 *. threshold) report.Core.Flow.input_ands report.Core.Flow.output_ands
        report.Core.Flow.applied (100.0 *. exact)
        (100.0 *. Techmap.Mapped.area m1 /. Techmap.Mapped.area m0)
        (100.0 *. Techmap.Mapped.delay m1 /. Techmap.Mapped.delay m0)
        report.Core.Flow.runtime_s)
    thresholds
