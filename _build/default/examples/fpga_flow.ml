(* FPGA flow on EPFL-class control circuits: approximate under ER = 1%, map
   to 6-LUTs, report LUT-count and depth ratios — the paper's Table VI
   experiment in miniature, with the approximate netlist exported to BLIF
   and structural Verilog.

   Run with: dune exec examples/fpga_flow.exe *)

module Graph = Aig.Graph
module Metrics = Errest.Metrics

let () =
  let circuits = [ "int2float"; "cavlc"; "router" ] in
  List.iter
    (fun name ->
      let entry =
        match Circuits.Suite.find name with Some e -> e | None -> assert false
      in
      let g = entry.Circuits.Suite.build () in
      let config =
        { (Core.Config.default ~metric:Metrics.Er ~threshold:0.01) with
          Core.Config.eval_rounds = 8192; seed = 1 }
      in
      let approx, report = Core.Flow.run ~config g in
      let m0 = Techmap.Lutmap.run (Graph.compact g) in
      let m1 = Techmap.Lutmap.run approx in
      let exact = Metrics.evaluate Metrics.Er ~original:g ~approx in
      Printf.printf
        "%-10s ER <= 1%%: LUTs %4d -> %4d (%.1f%%), depth %2d -> %2d, \
         measured ER %.3f%% (%.1fs)\n"
        name
        (Techmap.Mapped.num_cells m0) (Techmap.Mapped.num_cells m1)
        (100.0
        *. float_of_int (Techmap.Mapped.num_cells m1)
        /. float_of_int (max 1 (Techmap.Mapped.num_cells m0)))
        (Techmap.Mapped.depth m0) (Techmap.Mapped.depth m1) (100.0 *. exact)
        report.Core.Flow.runtime_s;
      (* Export the approximate design. *)
      let blif = Filename.concat (Filename.get_temp_dir_name ()) (name ^ "_approx.blif") in
      let verilog = Filename.concat (Filename.get_temp_dir_name ()) (name ^ "_approx.v") in
      Circuit_io.Blif.write_mapped blif m1;
      Circuit_io.Verilog.write_mapped verilog m1;
      Printf.printf "           wrote %s and %s\n" blif verilog)
    circuits
