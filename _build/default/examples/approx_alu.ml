(* Approximate a 74181-class ALU under an error-rate constraint with all
   three synthesis methods (ALSRAC, Su's, Liu's) and compare — a miniature
   of the paper's Table IV / VI comparisons.

   Run with: dune exec examples/approx_alu.exe *)

module Graph = Aig.Graph
module Metrics = Errest.Metrics

let () =
  let g = Circuits.Alu.alu4 () in
  let original = Graph.compact g in
  Printf.printf "original alu4: %s\n" (Format.asprintf "%a" Graph.pp_stats original);
  let threshold = 0.03 in
  let report name approx runtime =
    let exact = Metrics.evaluate Metrics.Er ~original:g ~approx in
    let m0 = Techmap.Cellmap.run original in
    let m1 = Techmap.Cellmap.run approx in
    Printf.printf
      "%-7s ER <= 3%%: ands %3d -> %3d, measured ER %.3f%%, area ratio %.1f%%, %.1fs\n"
      name (Graph.num_ands original) (Graph.num_ands approx) (100.0 *. exact)
      (100.0 *. Techmap.Mapped.area m1 /. Techmap.Mapped.area m0)
      runtime
  in
  (* ALSRAC. *)
  let config =
    { (Core.Config.default ~metric:Metrics.Er ~threshold) with
      Core.Config.eval_rounds = 8192; seed = 1 }
  in
  let a, ra = Core.Flow.run ~config g in
  report "alsrac" a ra.Core.Flow.runtime_s;
  (* Su's method. *)
  let sconfig =
    { (Baselines.Sasimi.default_config ~metric:Metrics.Er ~threshold) with
      Baselines.Sasimi.eval_rounds = 8192; seed = 1 }
  in
  let s, rs = Baselines.Sasimi.run ~config:sconfig g in
  report "su" s rs.Baselines.Sasimi.runtime_s;
  (* Liu's method. *)
  let mconfig =
    { (Baselines.Mcmc.default_config ~metric:Metrics.Er ~threshold) with
      Baselines.Mcmc.eval_rounds = 8192; proposals = 3000; seed = 1 }
  in
  let m, rm = Baselines.Mcmc.run ~config:mconfig g in
  report "liu" m rm.Baselines.Mcmc.runtime_s
