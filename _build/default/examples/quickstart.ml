(* Quickstart: the paper's worked example (Fig. 1, Tables I/II, Examples
   1-4) reproduced end-to-end on the real library API.

   Run with: dune exec examples/quickstart.exe *)

module Graph = Aig.Graph
module Bitvec = Logic.Bitvec

(* Fig. 1a: a 4-input circuit with internal nodes u, z, w and target node
   v = z XOR w (node functions reconstructed from Table I). *)
let build_figure_1a () =
  let g = Graph.create ~name:"fig1a" () in
  let a = Graph.add_pi ~name:"a" g in
  let b = Graph.add_pi ~name:"b" g in
  let c = Graph.add_pi ~name:"c" g in
  let d = Graph.add_pi ~name:"d" g in
  let u = Aig.Builder.or_ g c d in
  let z = Graph.and_ g (Aig.Builder.or_ g a b) (Graph.lit_not (Graph.and_ g b c)) in
  let w = Graph.lit_not c in
  let v = Aig.Builder.xor g z w in
  ignore (Graph.add_po ~name:"v" g v);
  (g, u, z, v)

let () =
  let g, u, z, v = build_figure_1a () in
  Printf.printf "== Fig. 1a circuit ==\n%s\n\n" (Format.asprintf "%a" Graph.pp_stats g);

  (* Table I: exhaustive node values. *)
  let pats = Sim.Patterns.exhaustive ~npis:4 in
  let sigs = Sim.Engine.simulate g pats in
  let value_of l m = Bitvec.get (Sim.Engine.lit_value sigs l) m in
  Printf.printf "== Table I (node values under all PI patterns) ==\n";
  Printf.printf "abcd | u z v\n";
  for m = 0 to 15 do
    (* PI i of the pattern set is bit i of m; print as the paper's a..d. *)
    Printf.printf "%d%d%d%d | %d %d %d\n" (m land 1) ((m lsr 1) land 1)
      ((m lsr 2) land 1) ((m lsr 3) land 1)
      (Bool.to_int (value_of u m)) (Bool.to_int (value_of z m))
      (Bool.to_int (value_of v m))
  done;

  (* Example 2: with ALL 16 patterns, {u, z} cannot resubstitute v. *)
  let scan_with rounds_sigs rounds =
    (* Care.scan reads plain node signatures; fold the literal phases in. *)
    let scratch = Array.map Bitvec.copy rounds_sigs in
    let put l =
      let id = Graph.node_of l in
      scratch.(id) <- Sim.Engine.lit_value rounds_sigs l;
      id
    in
    let ui = put u and zi = put z and vi = put v in
    Core.Care.scan ~sigs:scratch ~node:vi ~divisors:[| ui; zi |] ~rounds ()
  in
  let full = scan_with sigs 16 in
  Printf.printf "\n== Example 2: accurate resubstitution of v on {u, z}? %s ==\n"
    (if Core.Feasibility.ok full then "feasible" else "infeasible (as the paper shows)");

  (* Example 1/3: simulate only the 5 selected PI patterns
     abcd = {0000, 0010, 0011, 0100, 1000}. *)
  let selected = [ 0b0000; 0b0100; 0b1100; 0b0010; 0b0001 ] in
  (* (bit order: our PI i is bit i, the paper lists abcd left to right) *)
  let five =
    Array.init 4 (fun i ->
        Bitvec.init (List.length selected) (fun r -> (List.nth selected r lsr i) land 1 = 1))
  in
  let sigs5 = Sim.Engine.simulate g five in
  let care = scan_with sigs5 5 in
  Printf.printf "\n== Example 3: with 5 random patterns the divisor set {u, z} is %s ==\n"
    (if Core.Feasibility.ok care then "FEASIBLE" else "infeasible");
  Printf.printf "approximate care tuples at {u, z}: ";
  List.iter
    (fun t -> Printf.printf "%d%d " (t land 1) ((t lsr 1) land 1))
    (Core.Care.care_tuples care);
  Printf.printf " (Table II: 00, 01, 10 observed; 11 is a don't-care)\n";

  (* Example 4: derive the ISOP and apply the LAC. *)
  let cover = Core.Resub.derive care in
  let expr = Core.Resub.expr_of_cover cover in
  Printf.printf "\n== Example 4: resubstitution function ==\nv_hat(u, z) = %s\n"
    (Format.asprintf "%a" Logic.Factor.pp expr);
  (* The expression is over the u/z SIGNALS; Replace_expr binds plain nodes,
     so fold the edge phases of the u/z literals into the expression. *)
  let divisors = [| u; z |] in
  let rec phase_fix = function
    | Logic.Factor.Const b -> Logic.Factor.Const b
    | Logic.Factor.Lit (i, ph) ->
        Logic.Factor.Lit (i, if Graph.is_compl divisors.(i) then not ph else ph)
    | Logic.Factor.And es -> Logic.Factor.And (List.map phase_fix es)
    | Logic.Factor.Or es -> Logic.Factor.Or (List.map phase_fix es)
  in
  let target = Graph.node_of v in
  let approx =
    Graph.rebuild
      ~replace:(fun id ->
        if id = target then
          Some
            (Graph.Replace_expr
               (phase_fix expr, Array.map Graph.node_of divisors))
        else None)
      g
  in
  (* The PO literal of v is complemented in our AIG encoding; the paper's
     example works on the positive function, so flip if needed. *)
  let approx =
    if Graph.is_compl v then begin
      Graph.set_po approx 0 (Graph.lit_not (Graph.po_lit approx 0));
      Graph.compact approx
    end
    else approx
  in
  Printf.printf "\n== Fig. 1b: circuit after the LAC ==\n%s\n"
    (Format.asprintf "%a" Graph.pp_stats approx);
  let er = Errest.Metrics.evaluate Errest.Metrics.Er ~original:g ~approx in
  Printf.printf "error rate of the approximation: %.2f%% (paper: 18.75%%)\n" (100.0 *. er);

  (* And the whole thing again through the top-level flow API. *)
  let config =
    { (Core.Config.default ~metric:Errest.Metrics.Er ~threshold:0.19) with
      Core.Config.eval_rounds = 16 }
  in
  let auto, report = Core.Flow.run ~config g in
  Printf.printf
    "\n== Core.Flow.run at ER <= 19%% ==\nands %d -> %d, %d LACs, measured ER %.2f%%\n"
    report.Core.Flow.input_ands report.Core.Flow.output_ands report.Core.Flow.applied
    (100.0 *. Errest.Metrics.evaluate Errest.Metrics.Er ~original:g ~approx:auto)
