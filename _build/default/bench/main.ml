(* Benchmark harness: regenerates every table of the paper's evaluation
   section (Tables III-VII) on the reconstructed benchmark suite, plus
   bechamel microbenchmarks of the engine kernels and the ablations called
   out in DESIGN.md.

     dune exec bench/main.exe -- [table3|table4|table5|table6|table7|micro|all]

   Default parameters are scaled for a laptop run: a subset of each
   threshold sweep and one seed per configuration.  Set ALSRAC_BENCH_FULL=1
   for the paper's full sweeps averaged over three seeds.  Every run is
   deterministic given the seed set. *)

module Graph = Aig.Graph
module Metrics = Errest.Metrics

let full_mode =
  match Sys.getenv_opt "ALSRAC_BENCH_FULL" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let seeds = if full_mode then [ 1; 2; 3 ] else [ 1 ]

let er_thresholds =
  (* Paper: 0.1%, 0.3%, 0.5%, 0.8%, 1%, 3%, 5%. *)
  if full_mode then [ 0.001; 0.003; 0.005; 0.008; 0.01; 0.03; 0.05 ]
  else [ 0.001; 0.01; 0.05 ]

let nmed_thresholds =
  (* Paper: 0.00153% ... 0.19531% (eight doublings). *)
  if full_mode then
    [ 0.0000153; 0.0000305; 0.0000610; 0.0001221; 0.0002441; 0.0004883;
      0.0009766; 0.0019531 ]
  else [ 0.0000153; 0.0002441; 0.0019531 ]

let eval_rounds = if full_mode then 8192 else 2048

(* Per-run wall-clock budget in scaled mode; full mode runs to convergence
   (the paper's own runtimes for the large Table VII circuits are hours).
   ALSRAC_BENCH_BUDGET=<seconds> overrides the scaled-mode budget. *)
let max_seconds =
  if full_mode then infinity
  else
    match Sys.getenv_opt "ALSRAC_BENCH_BUDGET" with
    | Some s -> (try float_of_string s with _ -> 150.0)
    | None -> 150.0

let mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (max 1 (List.length xs))

let pct x = 100.0 *. x

(* ---------- Method runners ----------

   Each returns (approximate AIG, runtime seconds). *)

let run_alsrac ~metric ~threshold ~seed g =
  let config =
    { (Core.Config.default ~metric ~threshold) with
      Core.Config.eval_rounds; seed; max_seconds }
  in
  let approx, report = Core.Flow.run ~config g in
  (approx, report.Core.Flow.runtime_s)

let run_sasimi ~metric ~threshold ~seed g =
  let config =
    { (Baselines.Sasimi.default_config ~metric ~threshold) with
      Baselines.Sasimi.eval_rounds; seed; max_seconds }
  in
  let approx, report = Baselines.Sasimi.run ~config g in
  (approx, report.Baselines.Sasimi.runtime_s)

let run_mcmc ~metric ~threshold ~seed g =
  let config =
    { (Baselines.Mcmc.default_config ~metric ~threshold) with
      Baselines.Mcmc.eval_rounds; seed;
      proposals = (if full_mode then 8000 else 3000) }
  in
  let approx, report = Baselines.Mcmc.run ~config g in
  (approx, report.Baselines.Mcmc.runtime_s)

(* ---------- Mapped quality ---------- *)

type mapped_ratios = { area : float; delay : float }

let asic_ratios ~original approx =
  let m0 = Techmap.Cellmap.run original and m1 = Techmap.Cellmap.run approx in
  {
    area = Techmap.Mapped.area m1 /. Float.max 1.0 (Techmap.Mapped.area m0);
    delay = Techmap.Mapped.delay m1 /. Float.max 0.001 (Techmap.Mapped.delay m0);
  }

let fpga_ratios ~original approx =
  let m0 = Techmap.Lutmap.run original and m1 = Techmap.Lutmap.run approx in
  {
    area =
      float_of_int (Techmap.Mapped.num_cells m1)
      /. float_of_int (max 1 (Techmap.Mapped.num_cells m0));
    delay =
      float_of_int (Techmap.Mapped.depth m1)
      /. float_of_int (max 1 (Techmap.Mapped.depth m0));
  }

(* Average a method over thresholds x seeds on one circuit.  The returned
   flag marks sweeps in which at least one run hit the wall-clock budget
   (reported with a '*' — full mode never truncates). *)
let sweep ~runner ~ratios ~metric ~thresholds entry =
  let g = (entry : Circuits.Suite.entry).Circuits.Suite.build () in
  (* Both methods start from, and are measured against, the exactly
     optimized circuit (the paper pre-optimizes its benchmarks with SIS). *)
  let original = Aig.Resyn.compress2 (Graph.compact g) in
  let g = original in
  let areas = ref [] and delays = ref [] and times = ref [] in
  let capped = ref false in
  List.iter
    (fun threshold ->
      List.iter
        (fun seed ->
          let approx, rt = runner ~metric ~threshold ~seed g in
          if rt >= max_seconds -. 1.0 then capped := true;
          let r = ratios ~original approx in
          areas := r.area :: !areas;
          delays := r.delay :: !delays;
          times := rt :: !times)
        seeds)
    thresholds;
  (mean !areas, mean !delays, mean !times, !capped)

(* ---------- Table III ---------- *)

let table3 () =
  Printf.printf
    "\n== Table III: benchmark suite (reconstructed; see DESIGN.md section 2) ==\n";
  Printf.printf "%-10s %-22s %6s %6s | %9s %7s | %6s %6s\n" "circuit" "class" "ands"
    "depth" "cell-area" "delay" "LUT6" "Ldep";
  List.iter
    (fun (e : Circuits.Suite.entry) ->
      let g = e.Circuits.Suite.build () in
      let asic = Techmap.Cellmap.run g in
      let fpga = Techmap.Lutmap.run g in
      Printf.printf "%-10s %-22s %6d %6d | %9.1f %7.2f | %6d %6d\n%!"
        e.Circuits.Suite.name
        (Circuits.Suite.klass_to_string e.Circuits.Suite.klass)
        (Graph.num_ands g) (Aig.Topo.depth g) (Techmap.Mapped.area asic)
        (Techmap.Mapped.delay asic)
        (Techmap.Mapped.num_cells fpga)
        (Techmap.Mapped.depth fpga))
    Circuits.Suite.all

(* ---------- Tables IV / V: ALSRAC vs Su on ASIC ---------- *)

let versus_table ~title ~paper_note ~entries ~metric ~thresholds ~ratios
    ~baseline_name ~baseline =
  Printf.printf "\n== %s ==\n(%s)\n" title paper_note;
  Printf.printf "%-10s | %9s %9s | %9s %9s | %8s %8s\n" "circuit" "ALSRAC-a"
    (baseline_name ^ "-a") "ALSRAC-d" (baseline_name ^ "-d") "t-ALS"
    ("t-" ^ baseline_name);
  let acc = ref [] in
  List.iter
    (fun entry ->
      let a_area, a_delay, a_time, a_capped =
        sweep ~runner:run_alsrac ~ratios ~metric ~thresholds entry
      in
      let b_area, b_delay, b_time, b_capped =
        sweep ~runner:baseline ~ratios ~metric ~thresholds entry
      in
      acc := (a_area, b_area, a_delay, b_delay, a_time, b_time) :: !acc;
      Printf.printf "%-10s | %8.2f%% %8.2f%% | %8.2f%% %8.2f%% | %6.1fs%s %6.1fs%s\n%!"
        entry.Circuits.Suite.name (pct a_area) (pct b_area) (pct a_delay) (pct b_delay)
        a_time (if a_capped then "*" else " ")
        b_time (if b_capped then "*" else " "))
    entries;
  let col f = mean (List.map f !acc) in
  Printf.printf "%-10s | %8.2f%% %8.2f%% | %8.2f%% %8.2f%% | %7.1fs %7.1fs\n" "arithmean"
    (pct (col (fun (a, _, _, _, _, _) -> a)))
    (pct (col (fun (_, b, _, _, _, _) -> b)))
    (pct (col (fun (_, _, d, _, _, _) -> d)))
    (pct (col (fun (_, _, _, e, _, _) -> e)))
    (col (fun (_, _, _, _, t, _) -> t))
    (col (fun (_, _, _, _, _, u) -> u));
  Printf.printf "('*' = at least one run hit the %gs scaled-mode budget)\n"
    max_seconds

let table4 () =
  versus_table
    ~title:
      "Table IV: ALSRAC vs Su's method under ER constraint (ASIC, MCNC-class cells)"
    ~paper_note:
      (Printf.sprintf
         "area/delay ratios averaged over ER thresholds %s, %d seed(s); paper \
          arithmeans: ALSRAC 80.11%% vs Su 87.45%% area"
         (String.concat ", "
            (List.map (fun t -> Printf.sprintf "%g%%" (pct t)) er_thresholds))
         (List.length seeds))
    ~entries:(Circuits.Suite.of_klass Circuits.Suite.Iscas_arith)
    ~metric:Metrics.Er ~thresholds:er_thresholds ~ratios:asic_ratios
    ~baseline_name:"Su" ~baseline:run_sasimi

let table5 () =
  let entries = List.filter_map Circuits.Suite.find Circuits.Suite.nmed_set in
  versus_table
    ~title:"Table V: ALSRAC vs Su's method under NMED constraint (ASIC)"
    ~paper_note:
      (Printf.sprintf
         "ratios averaged over NMED thresholds %s, %d seed(s); paper arithmeans: \
          ALSRAC 39.64%% vs Su 48.43%% area"
         (String.concat ", "
            (List.map (fun t -> Printf.sprintf "%.5f%%" (pct t)) nmed_thresholds))
         (List.length seeds))
    ~entries ~metric:Metrics.Nmed ~thresholds:nmed_thresholds ~ratios:asic_ratios
    ~baseline_name:"Su" ~baseline:run_sasimi

(* ---------- Tables VI / VII: ALSRAC vs Liu on FPGA ---------- *)

let table6 () =
  versus_table
    ~title:"Table VI: ALSRAC vs Liu's method under ER = 1% (FPGA, 6-LUT)"
    ~paper_note:
      "EPFL random/control class; paper arithmeans: ALSRAC 74.30% vs Liu 80.25% LUTs"
    ~entries:(Circuits.Suite.of_klass Circuits.Suite.Epfl_control)
    ~metric:Metrics.Er ~thresholds:[ 0.01 ] ~ratios:fpga_ratios ~baseline_name:"Liu"
    ~baseline:run_mcmc

let table7 () =
  let entries =
    List.filter
      (fun (e : Circuits.Suite.entry) -> e.Circuits.Suite.name <> "hyp")
      (Circuits.Suite.of_klass Circuits.Suite.Epfl_arith)
  in
  versus_table
    ~title:"Table VII: ALSRAC vs Liu's method under MRED = 0.19531% (FPGA, 6-LUT)"
    ~paper_note:
      "EPFL arithmetic class, hyp excluded exactly as in the paper; paper \
       arithmeans (w/o max): ALSRAC 56.20% vs Liu 63.76% LUTs"
    ~entries ~metric:Metrics.Mred ~thresholds:[ 0.0019531 ] ~ratios:fpga_ratios
    ~baseline_name:"Liu" ~baseline:run_mcmc

(* ---------- Bechamel microbenchmarks ---------- *)

let micro () =
  let open Bechamel in
  Printf.printf "\n== Microbenchmarks (bechamel, monotonic clock) ==\n%!";
  (* Shared fixtures, built once. *)
  let mtp8 = Circuits.Multipliers.array_mult ~width:8 in
  let rng = Logic.Rng.create 42 in
  let pats2048 = Sim.Patterns.random rng ~npis:16 ~len:2048 in
  let sigs = Sim.Engine.simulate mtp8 pats2048 in
  let golden = Sim.Engine.po_values mtp8 sigs in
  let cavlc = Circuits.Epfl_control.cavlc () in
  let adder16 = Circuits.Adders.ripple_carry ~width:16 in
  let tt10 = Logic.Truth.of_fun 10 (fun m -> (m * 2654435761) land 0x400 <> 0) in
  let and_nodes =
    let acc = ref [] in
    Graph.iter_ands mtp8 (fun id -> acc := id :: !acc);
    Array.of_list !acc
  in
  let mid_node = and_nodes.(Array.length and_nodes / 2) in
  let tfo = Aig.Cone.tfo_mask mtp8 mid_node in
  let flipped = Logic.Bitvec.lognot sigs.(mid_node) in
  let care_cfg = Core.Config.default ~metric:Metrics.Er ~threshold:0.01 in
  let tests =
    [
      (* One kernel per table: the dominant inner operation each table's
         regeneration spends its time in. *)
      Test.make ~name:"t3-kernel: cellmap mtp8"
        (Staged.stage (fun () -> ignore (Techmap.Cellmap.run mtp8)));
      Test.make ~name:"t4-kernel: LAC generation (N=32, mtp8)"
        (Staged.stage (fun () ->
             let pats = Sim.Patterns.random (Logic.Rng.create 7) ~npis:16 ~len:32 in
             let s = Sim.Engine.simulate mtp8 pats in
             ignore (Core.Lac.generate mtp8 ~config:care_cfg ~sigs:s ~rounds:32)));
      Test.make ~name:"t5-kernel: batch error estimation (TFO resim, 2048 rounds)"
        (Staged.stage (fun () ->
             ignore
               (Sim.Engine.resimulate_tfo mtp8 ~base:sigs ~tfo ~node:mid_node
                  ~value:flipped)));
      Test.make ~name:"t6-kernel: lutmap cavlc"
        (Staged.stage (fun () -> ignore (Techmap.Lutmap.run cavlc)));
      Test.make ~name:"t7-kernel: NMED measurement (2048 rounds)"
        (Staged.stage (fun () -> ignore (Metrics.nmed ~golden ~approx:golden)));
      (* Engine kernels. *)
      Test.make ~name:"simulate mtp8 x2048 rounds"
        (Staged.stage (fun () -> ignore (Sim.Engine.simulate mtp8 pats2048)));
      Test.make ~name:"compress2 adder16"
        (Staged.stage (fun () -> ignore (Aig.Resyn.compress2 adder16)));
      Test.make ~name:"cut enumeration k=6 mtp8"
        (Staged.stage (fun () -> ignore (Aig.Cut.enumerate mtp8 ~k:6 ())));
      Test.make ~name:"isop 10-var table"
        (Staged.stage (fun () ->
             ignore (Logic.Isop.compute ~on:tt10 ~dc:(Logic.Truth.const0 10))));
      Test.make ~name:"espresso 10-var table"
        (Staged.stage (fun () ->
             ignore (Logic.Espresso.minimize ~on:tt10 ~dc:(Logic.Truth.const0 10))));
      (* Ablation: exact TFO re-simulation vs backward observability masks. *)
      Test.make ~name:"ablation: observability masks (backward pass)"
        (Staged.stage (fun () -> ignore (Errest.Observability.masks mtp8 ~sigs)));
      Test.make ~name:"fraig-lite mtp8"
        (Staged.stage (fun () -> ignore (Sim.Fraig.run mtp8)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-58s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-58s (no estimate)\n%!" name)
        analysis)
    tests

(* ---------- Ablation: ALSRAC design choices (DESIGN.md section 5) ---------- *)

let ablations () =
  Printf.printf "\n== Ablations (wal8, NMED <= 0.1%%) ==\n%!";
  let g = Circuits.Multipliers.wallace ~width:8 in
  let base = Core.Config.default ~metric:Metrics.Nmed ~threshold:0.001 in
  let variants =
    [
      ("default (N=32, compress2)", base);
      ("no inter-iteration resyn", { base with Core.Config.resyn = Core.Config.No_resyn });
      ("light resyn only", { base with Core.Config.resyn = Core.Config.Light });
      ("fixed small care set (N=8)", { base with Core.Config.sim_rounds = 8 });
      ("large care set (N=256)", { base with Core.Config.sim_rounds = 256 });
      ("L=4 LACs per node", { base with Core.Config.lac_limit = 4 });
      ("ODC-aware care sets", { base with Core.Config.use_odc = true });
      ("no depth guard", { base with Core.Config.max_depth_growth = infinity });
    ]
  in
  List.iter
    (fun (name, config) ->
      let config = { config with Core.Config.eval_rounds; seed = 1; max_seconds } in
      let approx, report = Core.Flow.run ~config g in
      let exact = Metrics.evaluate Metrics.Nmed ~original:g ~approx in
      Printf.printf "%-28s ands %3d -> %3d (%.1f%%), NMED %.4f%%, %.1fs\n%!" name
        report.Core.Flow.input_ands report.Core.Flow.output_ands
        (pct
           (float_of_int report.Core.Flow.output_ands
           /. float_of_int report.Core.Flow.input_ands))
        (pct exact) report.Core.Flow.runtime_s)
    variants

(* ---------- Driver ---------- *)

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let t0 = Sys.time () in
  (match mode with
  | "table3" -> table3 ()
  | "table4" -> table4 ()
  | "table5" -> table5 ()
  | "table6" -> table6 ()
  | "table7" -> table7 ()
  | "micro" -> micro ()
  | "ablations" -> ablations ()
  | "all" ->
      table3 ();
      table4 ();
      table5 ();
      table6 ();
      table7 ();
      ablations ();
      micro ()
  | m ->
      Printf.eprintf
        "unknown mode %s (table3|table4|table5|table6|table7|ablations|micro|all)\n" m;
      exit 1);
  Printf.printf "\ntotal bench time: %.1fs%s\n" (Sys.time () -. t0)
    (if full_mode then " (full mode)"
     else " (scaled mode; ALSRAC_BENCH_FULL=1 for full sweeps)")
