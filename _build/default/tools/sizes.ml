let () =
  List.iter
    (fun (e : Circuits.Suite.entry) ->
      let g = e.Circuits.Suite.build () in
      Printf.printf "%-10s %-22s pi=%4d po=%4d and=%6d depth=%3d\n"
        e.Circuits.Suite.name
        (Circuits.Suite.klass_to_string e.Circuits.Suite.klass)
        (Aig.Graph.num_pis g) (Aig.Graph.num_pos g) (Aig.Graph.num_ands g)
        (Aig.Topo.depth g))
    Circuits.Suite.all
